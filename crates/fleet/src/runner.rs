//! The fleet runner: N concurrent jobs, one shared standby pool, one event
//! loop.
//!
//! Each job is a steppable [`JobExecution`]; the runner repeatedly advances
//! the job whose next event (injected fault or job end) is earliest, which
//! keeps every draw on the shared warm-standby pool in global time order.
//! Job selection goes through the [`scheduler`](crate::scheduler) — an
//! O(log J) binary heap of `(next_event_at, job_index)` keys by default, with
//! the original O(J) linear scan retained as an oracle reference. Per-job
//! seeds are forked deterministically from the fleet seed, and ties between
//! simultaneous events are broken by a dedicated `SimRng` stream — the whole
//! interleaving is a pure function of the fleet seed and identical across
//! both schedulers.
//!
//! After every incident the runner feeds the closed dossier to the
//! [`IncidentWarehouse`], the [`RepeatOffenderLedger`] (whose offender set is
//! re-published to every job's monitor behind an `Arc` — and only when the
//! set actually changed), and the [`BacklogDrainer`] (whose completed
//! stress-test sweeps return cleared machines to the shared pool).

use byterobust_core::{JobConfig, JobExecution, RobustController, SegmentOutcome};
use byterobust_incident::{IncidentDossier, RecoveryPhase};
use byterobust_obs::{
    names, signals, AlertEngine, RuleSet, SignalBus, SignalId, SpanKind, Trace, TraceRecorder,
};
use byterobust_recovery::WarmStandbyPool;
use byterobust_sim::{SimDuration, SimRng, SimTime};
use byterobust_trainsim::JobSpec;

use crate::broker::{BrokerConfig, BrokeredScheduler, FleetBroker, JobPriority};
use crate::drainer::BacklogDrainer;
use crate::ledger::RepeatOffenderLedger;
use crate::report::{DrainSummary, FleetJobReport, FleetReport};
use crate::scheduler::{EventScheduler, SchedulerKind};
use crate::service::WarehouseService;
use crate::warehouse::{IncidentWarehouse, WarehouseStorage};

/// One job in the fleet: a label (unique within the fleet) plus its
/// configuration and broker priority.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// Display label; also the warehouse shard key.
    pub label: String,
    /// The job's configuration.
    pub config: JobConfig,
    /// Broker priority: admission order, and who may preempt whom.
    pub priority: JobPriority,
}

impl FleetJob {
    /// Creates a labelled fleet job at [`JobPriority::Standard`].
    pub fn new(label: impl Into<String>, config: JobConfig) -> Self {
        FleetJob {
            label: label.into(),
            config,
            priority: JobPriority::default(),
        }
    }

    /// Sets the job's broker priority.
    pub fn with_priority(mut self, priority: JobPriority) -> Self {
        self.priority = priority;
        self
    }
}

/// Fleet-level configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The jobs to run concurrently.
    pub jobs: Vec<FleetJob>,
    /// Incidents across jobs at or above which a machine is a repeat
    /// offender.
    pub repeat_offender_threshold: usize,
    /// Warehouse time-bucket width.
    pub bucket_width: SimDuration,
    /// Overrides the shared standby pool's target size (e.g. a deliberately
    /// starved pool for broker drills). `None` uses the pooled P99 sizing.
    pub pool_override: Option<usize>,
    /// Fleet resource broker. `None` runs the un-brokered baseline: the pool
    /// degrades to the slow reschedule path when it runs dry.
    pub broker: Option<BrokerConfig>,
    /// Warehouse disk-spill policy. `None` keeps every shard in memory;
    /// `Some` spills cold shards to segment files under the given run
    /// directory. Query results and the rendered report are byte-identical
    /// either way (pinned by the spill oracles).
    pub warehouse_storage: Option<WarehouseStorage>,
    /// Declarative alert rules evaluated in sim time during the run. `None`
    /// disables the alerting plane entirely (no signal bus, no engine);
    /// `Some` fills [`FleetReport::alerts`] with the run's canonical
    /// timeline. The rendered report and the trace are byte-identical
    /// either way.
    pub alert_rules: Option<RuleSet>,
    /// The resident query plane, if attached: the runner publishes a
    /// copy-on-write epoch into the service after every warehouse insert
    /// (plus an initial empty epoch and a final sealed one), so reader
    /// threads holding a clone of the service answer [`FleetQuery`]s
    /// concurrently with the run under snapshot isolation. `None` runs
    /// without a query plane. The rendered report is byte-identical either
    /// way (publishing is read-only over shard heads).
    ///
    /// [`FleetQuery`]: crate::query::FleetQuery
    pub query_service: Option<WarehouseService>,
}

impl FleetConfig {
    /// A fleet with default warehouse bucketing (1 h) and offender threshold
    /// (2 incidents), broker disabled.
    pub fn new(jobs: Vec<FleetJob>) -> Self {
        FleetConfig {
            jobs,
            repeat_offender_threshold: 2,
            bucket_width: SimDuration::from_hours(1),
            pool_override: None,
            broker: None,
            warehouse_storage: None,
            alert_rules: None,
            query_service: None,
        }
    }

    /// Attaches a resident query service; the runner publishes an epoch into
    /// it after every warehouse insert and seals it when the run completes.
    pub fn with_query_service(mut self, service: WarehouseService) -> Self {
        self.query_service = Some(service);
        self
    }

    /// Attaches an alert rule set, to be evaluated in sim time as the fleet
    /// runs.
    pub fn with_alert_rules(mut self, rules: RuleSet) -> Self {
        self.alert_rules = Some(rules);
        self
    }

    /// Enables the fleet broker with the given policy.
    pub fn with_broker(mut self, broker: BrokerConfig) -> Self {
        self.broker = Some(broker);
        self
    }

    /// Disables the fleet broker (the un-brokered baseline of the same
    /// fleet).
    pub fn without_broker(mut self) -> Self {
        self.broker = None;
        self
    }

    /// Overrides the shared pool's target size.
    pub fn with_pool_override(mut self, target: usize) -> Self {
        self.pool_override = Some(target);
        self
    }

    /// Attaches a warehouse disk-spill policy: cold incident shards are
    /// written to segment files under `storage.spill_dir` once the resident
    /// dossier count exceeds `storage.budget`.
    pub fn with_warehouse_storage(mut self, storage: WarehouseStorage) -> Self {
        self.warehouse_storage = Some(storage);
        self
    }

    /// The three-job drill used by `examples/fleet_drill.rs`, the fleet bench
    /// panel, and the integration tests: a dense 16-machine job, an
    /// MoE-flavoured variant (more manual restarts and risky user code,
    /// §8.1.3), and a Table-5-scale 128-machine dense job, all at fault rates
    /// aggressive enough to produce a rich cross-job incident mix within the
    /// simulated window.
    pub fn small_drill() -> Self {
        let dense = JobConfig::small_test();

        let mut moe = JobConfig::small_test();
        moe.job.model.name = "tiny-moe-test".to_string();
        moe.fault.manual_restart_interval = SimDuration::from_hours(4);
        moe.fault.user_code_fraction = 0.45;

        let mut table5 = JobConfig::for_job(JobSpec::table5_70b_small(), SimDuration::from_days(1));
        table5.fault.reference_mtbf = SimDuration::from_hours(2);
        table5.fault.reference_gpus = table5.job.world_size();
        table5.fault.manual_restart_interval = SimDuration::from_hours(8);
        table5.series_points = 50;

        FleetConfig::new(vec![
            FleetJob::new("dense-small", dense),
            FleetJob::new("moe-small", moe),
            FleetJob::new("table5-70b", table5),
        ])
    }

    /// The fleet-scale drill: ~24 concurrent jobs over a four-digit machine
    /// count (8 dense 16-machine jobs, 8 MoE-flavoured 16-machine jobs, and
    /// 8 Table-5-scale 128-machine jobs — 1,280 machines in total). This was
    /// impractical under the per-event linear scan and is the headline
    /// throughput benchmark for the heap scheduler (`BENCH_fleet.json`).
    /// Fault parameters are staggered per job so the incident mix differs
    /// across the fleet.
    pub fn large_drill() -> Self {
        let mut jobs = Vec::new();
        for i in 0..8u64 {
            let mut dense = JobConfig::small_test();
            dense.fault.manual_restart_interval = SimDuration::from_hours(5 + i % 3);
            jobs.push(FleetJob::new(format!("dense-{i:02}"), dense));
        }
        for i in 0..8u64 {
            let mut moe = JobConfig::small_test();
            moe.job.model.name = format!("tiny-moe-{i:02}");
            moe.fault.manual_restart_interval = SimDuration::from_hours(3 + i % 4);
            moe.fault.user_code_fraction = 0.35 + 0.02 * i as f64;
            jobs.push(FleetJob::new(format!("moe-{i:02}"), moe));
        }
        for i in 0..8u64 {
            let mut table5 =
                JobConfig::for_job(JobSpec::table5_70b_small(), SimDuration::from_days(1));
            table5.fault.reference_mtbf = SimDuration::from_hours(2 + i % 2);
            table5.fault.reference_gpus = table5.job.world_size();
            table5.fault.manual_restart_interval = SimDuration::from_hours(6 + i);
            table5.series_points = 50;
            jobs.push(FleetJob::new(format!("table5-{i:02}"), table5));
        }
        FleetConfig::new(jobs)
    }

    /// A fleet engineered to starve the shared standby pool — the
    /// pool-exhaustion drill behind the broker benchmarks and the baseline
    /// regression tests. Four 16-machine jobs at drill fault rates share a
    /// single-standby pool: every multi-machine eviction shortfalls. One job
    /// is `Critical` (the intended preemption/migration beneficiary), one is
    /// an over-provisioned `BestEffort` donor carrying twelve extra warm
    /// spares, one is a plain `BestEffort` job whose replenishment slots are
    /// preemption fodder, and one queues behind a 48-machine admission limit
    /// when the broker is enabled. Run it `without_broker()` for the degraded
    /// baseline the broker must beat.
    pub fn starved_drill() -> Self {
        let critical = JobConfig::small_test();

        let mut donor = JobConfig::small_test();
        donor.job.model.name = "batch-donor".to_string();
        donor.extra_standby_machines = 12;

        let mut filler = JobConfig::small_test();
        filler.job.model.name = "batch-filler".to_string();
        filler.fault.manual_restart_interval = SimDuration::from_hours(4);
        // A hot fault rate keeps pool replenishments in flight, so the
        // critical job finds lower-priority slots to preempt.
        filler.fault.reference_mtbf = SimDuration::from_hours(1);

        let mut queued = JobConfig::small_test();
        queued.job.model.name = "batch-queued".to_string();

        let mut config = FleetConfig::new(vec![
            FleetJob::new("prod-critical", critical).with_priority(JobPriority::Critical),
            FleetJob::new("batch-donor", donor).with_priority(JobPriority::BestEffort),
            FleetJob::new("batch-filler", filler).with_priority(JobPriority::BestEffort),
            FleetJob::new("batch-queued", queued).with_priority(JobPriority::BestEffort),
        ]);
        config.pool_override = Some(2);
        config.broker = Some(BrokerConfig {
            admission_limit: Some(48),
            reserve_for_priority: 1,
        });
        config
    }

    /// Total machine demand across the fleet: the sum of every job's
    /// footprint. This is what sizes the shared standby pool. (Machine
    /// *identity* is a separate matter — jobs address one fleet-wide
    /// `MachineId` namespace so recorded incident history composes across
    /// jobs; see the crate docs for that modelling note.)
    pub fn total_machines(&self) -> usize {
        self.jobs.iter().map(|job| job.config.job.machines()).sum()
    }

    /// The shared warm-standby pool: the default (per-job) pool sizing
    /// applied to the *fleet's* total machine count, so the comparison
    /// against [`FleetConfig::solo_pool_sum`] is apples to apples. Sharing
    /// is the point — the binomial P99 of the pooled demand is smaller than
    /// the sum of per-job P99 pools. [`FleetConfig::pool_override`] replaces
    /// the target size (starvation drills).
    pub fn shared_pool(&self) -> WarmStandbyPool {
        let pool = RobustController::default_standby_pool(self.total_machines().max(1));
        match self.pool_override {
            Some(target) => WarmStandbyPool::with_target_size(*pool.config(), target),
            None => pool,
        }
    }

    /// What provisioning standbys per job (no sharing) would cost: the sum of
    /// each job's default P99 pool.
    pub fn solo_pool_sum(&self) -> usize {
        self.jobs
            .iter()
            .map(|job| {
                RobustController::default_standby_pool(job.config.job.machines()).target_size()
            })
            .sum()
    }
}

/// The runner's tap into the alerting plane: the signal bus the event loop
/// publishes to, the engine that watches it, and the pre-registered signal
/// ids (registration allocates; the per-event publishes do not). Built only
/// when [`FleetConfig::alert_rules`] is set — with alerting off the loop
/// carries no tap and behaves exactly as before.
struct AlertTap {
    bus: SignalBus,
    engine: AlertEngine,
    incidents: SignalId,
    evictions: SignalId,
    recovery_secs: SignalId,
    pool_ready: SignalId,
    pool_shortfall: SignalId,
    broker_queue: SignalId,
    phases: [(RecoveryPhase, SignalId); 6],
    job_incidents: Vec<SignalId>,
}

impl AlertTap {
    fn new(rules: &RuleSet, jobs: &[FleetJob]) -> AlertTap {
        let mut bus = SignalBus::new();
        let incidents = bus.register(signals::INCIDENTS);
        let evictions = bus.register(signals::EVICTIONS);
        let recovery_secs = bus.register(signals::RECOVERY_SECS);
        let pool_ready = bus.register(signals::POOL_READY);
        let pool_shortfall = bus.register(signals::POOL_SHORTFALL);
        let broker_queue = bus.register(signals::BROKER_QUEUE);
        let phases = RecoveryPhase::ALL
            .map(|phase| (phase, bus.register(&signals::recovery_phase(phase.name()))));
        let job_incidents = jobs
            .iter()
            .map(|job| bus.register(&signals::job_incidents(&job.label)))
            .collect();
        AlertTap {
            engine: AlertEngine::new(rules),
            bus,
            incidents,
            evictions,
            recovery_secs,
            pool_ready,
            pool_shortfall,
            broker_queue,
            phases,
            job_incidents,
        }
    }

    /// Publishes one closed incident's signals, stamped at its injection
    /// time (= the event time that produced it).
    fn observe_incident(&mut self, at: SimTime, job_index: usize, dossier: &IncidentDossier) {
        self.bus.publish(self.incidents, at, 1.0);
        self.bus.publish(self.job_incidents[job_index], at, 1.0);
        if !dossier.evicted.is_empty() {
            self.bus
                .publish(self.evictions, at, dossier.evicted.len() as f64);
        }
        self.bus
            .publish(self.recovery_secs, at, dossier.cost.total().as_secs_f64());
        // Same decomposition the flight recorder stamps into the dossier.
        for (phase, duration) in RobustController::recovery_phases(&dossier.cost) {
            if !duration.is_zero() {
                let (_, id) = self
                    .phases
                    .iter()
                    .find(|(p, _)| *p == phase)
                    .expect("every recovery phase is registered at tap construction");
                self.bus.publish(*id, at, duration.as_secs_f64());
            }
        }
    }

    /// Publishes the end-of-event gauges and evaluates every rule at `now`.
    fn observe_gauges_and_evaluate(&mut self, now: SimTime, broker: &FleetBroker) {
        self.bus
            .publish(self.pool_ready, now, broker.pool().ready() as f64);
        self.bus.publish(
            self.pool_shortfall,
            now,
            broker.pool().shortfall_machines() as f64,
        );
        self.bus
            .publish(self.broker_queue, now, broker.queue_depth() as f64);
        self.engine.evaluate(&self.bus, now);
    }
}

/// Runs a fleet to completion, deterministically from one seed.
#[derive(Debug, Clone)]
pub struct FleetRunner {
    config: FleetConfig,
    seed: u64,
}

impl FleetRunner {
    /// Creates a runner. Job labels must be unique (they key the warehouse
    /// shards).
    pub fn new(config: FleetConfig, seed: u64) -> Self {
        for (i, a) in config.jobs.iter().enumerate() {
            for b in &config.jobs[i + 1..] {
                assert_ne!(a.label, b.label, "fleet job labels must be unique");
            }
        }
        FleetRunner { config, seed }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The per-job seeds this runner will use, forked from the fleet seed in
    /// job order. Exposed so solo baselines can replay the exact same jobs.
    pub fn job_seeds(&self) -> Vec<u64> {
        let mut rng = SimRng::new(self.seed);
        (0..self.config.jobs.len())
            .map(|i| rng.fork(i as u64 + 1).seed())
            .collect()
    }

    /// Runs every job to completion and returns the fleet report, using the
    /// heap scheduler.
    pub fn run(&self) -> FleetReport {
        self.run_with(SchedulerKind::default())
    }

    /// Runs with an explicit scheduler. [`SchedulerKind::NaiveScan`] is the
    /// retained O(J)-per-event reference; the oracle tests pin
    /// `run_with(NaiveScan).render() == run().render()`.
    pub fn run_with(&self, scheduler_kind: SchedulerKind) -> FleetReport {
        let mut rng = SimRng::new(self.seed);
        let mut executions: Vec<JobExecution> = self
            .config
            .jobs
            .iter()
            .enumerate()
            .map(|(i, job)| JobExecution::new(job.config.clone(), rng.fork(i as u64 + 1).seed()))
            .collect();
        let mut tie_rng = rng.fork(0xF1EE7);

        // Every machine grant is mediated by the broker. With the broker
        // disabled (`config.broker == None`) it is a strict pass-through to
        // the shared pool and this loop behaves exactly as the un-brokered
        // runner did.
        let pool = self.config.shared_pool();
        let pool_target = pool.target_size();
        let mut broker = FleetBroker::new(&self.config, pool);
        if broker.enabled() {
            for (i, execution) in executions.iter().enumerate() {
                let members: Vec<_> = execution
                    .cluster()
                    .machines()
                    .iter()
                    .map(|machine| machine.id)
                    .collect();
                broker.register_job(i, &members, &execution.cluster().standby_machines());
            }
        }
        for index in broker.plan_admission() {
            executions[index].hold();
        }
        let mut scheduler = EventScheduler::new(scheduler_kind, &executions);

        let mut warehouse = match &self.config.warehouse_storage {
            Some(storage) => {
                IncidentWarehouse::with_storage(self.config.bucket_width, storage.clone())
            }
            None => IncidentWarehouse::new(self.config.bucket_width),
        };
        // The resident query plane, if attached: epoch 0 (the empty
        // warehouse) is published before the first event so concurrent
        // readers always find a pinnable snapshot.
        let query_service = self.config.query_service.as_ref();
        if let Some(service) = query_service {
            service.publish(&warehouse);
        }
        let mut drainer = BacklogDrainer::new();
        let mut ledger = RepeatOffenderLedger::new(self.config.repeat_offender_threshold);
        let mut machines_returned = 0usize;
        let mut machines_confirmed_faulty = 0usize;
        let mut sweeps_completed_in_run = 0usize;
        let mut events_processed = 0usize;
        // Fleet-scope trace: job stepping, warehouse ingestion, and (replayed
        // at the end) broker interventions. Per-job incident spans live in
        // each job's own controller recorder; everything merges into one
        // canonical document for the report.
        let mut fleet_trace = TraceRecorder::new();
        // The alerting plane, if rules are attached: signals published per
        // event, rules evaluated per event, all in sim time.
        let mut alert_tap = self
            .config
            .alert_rules
            .as_ref()
            .map(|rules| AlertTap::new(rules, &self.config.jobs));

        // The unfinished job with the earliest next event; simultaneous
        // events are broken by the interleave stream inside the scheduler.
        while let Some((event_at, index)) = scheduler.next(&executions, &mut tie_rng) {
            assert!(
                event_at < SimTime::MAX,
                "scheduler picked a job still held in the admission queue"
            );
            events_processed += 1;
            let step_span = fleet_trace.instant(SpanKind::JobStep, names::JOB_STEP, None, event_at);
            fleet_trace.set_value(step_span, index as u64);

            // Complete sweeps due by this event and return cleared machines
            // to the shared pool before the next job draws from it (each
            // machine at most once — two sweeps can both clear the same id).
            for sweep in drainer.tick(event_at) {
                for &machine in &sweep.passed {
                    if broker.restock(machine) {
                        machines_returned += 1;
                    }
                }
                machines_confirmed_faulty += sweep.failed.len();
                sweeps_completed_in_run += 1;
            }

            let label = &self.config.jobs[index].label;
            let outcome = {
                let mut grants = BrokeredScheduler::new(&mut broker, index);
                executions[index].advance_with_scheduler(&mut grants)
            };
            match outcome {
                SegmentOutcome::Finished => {}
                SegmentOutcome::Incident { seq } => {
                    // Borrow the dossier where it lives (the job's own store);
                    // the warehouse copy below is the only clone on this path.
                    let dossier = executions[index]
                        .incident_store()
                        .get(seq)
                        .expect("closed incident is stored");
                    let closed_at = dossier.at + dossier.cost.total();
                    let offenders_changed = ledger.observe(dossier);
                    broker.note_incident(&dossier.evicted);
                    drainer.dispatch(label, dossier, closed_at);
                    warehouse.insert(label, dossier.clone());
                    // Publish the post-insert epoch: a handful of Arc clones
                    // of the shard heads. Readers pinning earlier epochs are
                    // untouched (copy-on-write).
                    if let Some(service) = query_service {
                        service.publish(&warehouse);
                    }
                    let insert_span = fleet_trace.instant(
                        SpanKind::Warehouse,
                        names::WAREHOUSE_INSERT,
                        Some(step_span),
                        closed_at,
                    );
                    fleet_trace.set_incident(insert_span, seq);
                    if let Some(tap) = alert_tap.as_mut() {
                        tap.observe_incident(event_at, index, dossier);
                    }
                    // Re-publish the cross-job offender set only when a
                    // machine actually crossed the threshold; each monitor
                    // receives an Arc pointer copy, not a vector clone.
                    if offenders_changed {
                        let offenders = ledger.offenders_shared();
                        for execution in executions.iter_mut() {
                            execution
                                .controller_mut()
                                .monitor_mut()
                                .set_repeat_offenders_shared(offenders.clone());
                        }
                    }
                }
            }
            // A job can finish on either outcome (its last incident's
            // unproductive tail can run past the configured end). Either
            // way, a finished job frees its footprint: admit queued jobs
            // that now fit, starting them at this event time.
            if executions[index].is_finished() {
                for admitted in broker.on_job_finished(index, event_at) {
                    executions[admitted].release_at(event_at);
                    scheduler.reschedule(admitted, &executions);
                }
            }
            // Apply broker-planned migrations now that the advancing job's
            // borrow has ended: the Machine object moves wholesale, so its id
            // and hardware history arrive with it.
            for migration in broker.take_pending_migrations() {
                let machine = executions[migration.from_job]
                    .cluster_mut()
                    .release_machine(migration.machine);
                executions[migration.to_job]
                    .cluster_mut()
                    .adopt_machine(machine);
            }
            if broker.enabled() {
                broker.sync_spares(index, &executions[index].cluster().standby_machines());
            }
            // Alerting sees the post-event world: gauges reflect the pool,
            // queue, and shortfall state after this event settled, and every
            // rule is evaluated at the event's sim time.
            if let Some(tap) = alert_tap.as_mut() {
                tap.observe_gauges_and_evaluate(event_at, &broker);
            }
            scheduler.reschedule(index, &executions);
        }

        // Sweeps still in flight when the last job ends complete at the fleet
        // horizon (they were dispatched in-run; the machines just come back
        // after the final job's end time).
        let horizon = self
            .config
            .jobs
            .iter()
            .map(|job| SimTime::ZERO + job.config.duration)
            .max()
            .unwrap_or(SimTime::ZERO)
            + SimDuration::from_days(365);
        let mut sweeps_completed_post_run = 0usize;
        for sweep in drainer.tick(horizon) {
            for &machine in &sweep.passed {
                if broker.restock(machine) {
                    machines_returned += 1;
                }
            }
            machines_confirmed_faulty += sweep.failed.len();
            sweeps_completed_post_run += 1;
        }

        // Merge the sim-time trace: the fleet scope (stepping, warehouse,
        // broker) plus each controller's incident spans under its job label.
        // Snapshots are taken before `into_report` consumes the executions;
        // the merge re-sorts into the canonical (start, scope, id) order, so
        // the result is a pure function of the seed — identical across
        // schedulers, spill modes, and harness parallelism.
        broker.record_trace(&mut fleet_trace);
        let mut trace_parts = vec![fleet_trace.snapshot("fleet")];
        trace_parts.extend(
            executions
                .iter()
                .zip(self.config.jobs.iter())
                .map(|(execution, job)| execution.controller().trace_snapshot(&job.label)),
        );
        let trace = Trace::merge(trace_parts);
        let scheduler_ops = scheduler.ops();
        // Canonicalize the alert timeline (sorted, sequence-numbered). With
        // alerting off this is the empty timeline.
        let alerts = alert_tap.map(|tap| tap.engine.finish()).unwrap_or_default();

        // Final epoch + seal: the latest published snapshot is now the run's
        // complete warehouse content, and post-hoc readers can replay any
        // epoch against it.
        if let Some(service) = query_service {
            service.publish(&warehouse);
            service.seal();
        }

        let seeds = self.job_seeds();
        let jobs: Vec<FleetJobReport> = executions
            .into_iter()
            .zip(self.config.jobs.iter())
            .zip(seeds)
            .map(|((execution, job), seed)| FleetJobReport {
                label: job.label.clone(),
                seed,
                machines: job.config.job.machines(),
                report: execution.into_report(),
            })
            .collect();

        let escalation_counts = drainer.escalation_counts().clone();
        let drain = DrainSummary {
            sweeps_dispatched: drainer.sweeps_dispatched(),
            sweeps_completed_in_run,
            sweeps_completed_post_run,
            machines_returned_to_standby: machines_returned,
            machines_confirmed_faulty,
            escalation_counts,
        };

        FleetReport {
            seed: self.seed,
            jobs,
            events_processed,
            trace,
            scheduler_ops,
            warehouse,
            completed_sweeps: drainer.completed().to_vec(),
            drain,
            repeat_offenders: ledger.offender_counts(),
            repeat_offender_threshold: ledger.threshold(),
            shared_pool_target: pool_target,
            shared_pool_ready_final: broker.pool().ready(),
            pool_shortfall_events: broker.pool().shortfall_events(),
            pool_shortfall_machines: broker.pool().shortfall_machines(),
            solo_pool_sum: self.config.solo_pool_sum(),
            migrations: broker.registry().migrations().to_vec(),
            broker: broker.summary(),
            alerts,
        }
    }
}
