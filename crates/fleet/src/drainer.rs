//! The escalation-backlog drainer.
//!
//! The classification matrix doesn't just label incidents — it queues work
//! (`IncidentStore::escalation_backlog()`). Until now nothing consumed that
//! queue. The drainer closes the loop for the one escalation with an in-run
//! effect: a [`Escalation::StressTestSweep`] dispatches a
//! [`SelectiveStressTester`] sweep over the incident's evicted machines;
//! when the sweep completes, machines that pass (the over-evicted hostages —
//! per the *recorded* per-machine eviction flags in the capture, not injector
//! state) are returned to the shared warm-standby pool, while confirmed
//! culprits stay out with their hardware tickets. The remaining escalation
//! kinds are tallied so the fleet report can show the full backlog.

use std::collections::BTreeMap;

use byterobust_agent::SelectiveStressTester;
use byterobust_cluster::MachineId;
use byterobust_incident::{Escalation, IncidentDossier, RecorderEvent};
use byterobust_sim::{SimDuration, SimTime};

/// Sweep duration when the baseline has no symptom-specific stress test
/// (matches the tester's generic machine-sweep figure).
const GENERIC_SWEEP: SimDuration = SimDuration::from_secs(400);

/// A dispatched, not-yet-finished stress-test sweep.
#[derive(Debug, Clone, PartialEq)]
struct SweepTicket {
    job: String,
    seq: u64,
    passed: Vec<MachineId>,
    failed: Vec<MachineId>,
    dispatched_at: SimTime,
    completes_at: SimTime,
}

/// A finished sweep: which machines cleared it and which were confirmed
/// faulty.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedSweep {
    /// Job whose incident queued the sweep.
    pub job: String,
    /// The incident's sequence number within that job.
    pub seq: u64,
    /// Machines that passed — healthy hostages of an over-eviction, eligible
    /// to re-enter the warm-standby pool.
    pub passed: Vec<MachineId>,
    /// Machines that failed — confirmed culprits, staying with their
    /// hardware tickets.
    pub failed: Vec<MachineId>,
    /// When the sweep was queued (the incident's close time).
    pub dispatched_at: SimTime,
    /// When the sweep finished.
    pub completed_at: SimTime,
}

impl CompletedSweep {
    /// Total machines the sweep exercised.
    pub fn machines_swept(&self) -> usize {
        self.passed.len() + self.failed.len()
    }
}

/// Consumes the escalation backlog as incidents close.
#[derive(Debug, Clone, Default)]
pub struct BacklogDrainer {
    tester: SelectiveStressTester,
    pending: Vec<SweepTicket>,
    completed: Vec<CompletedSweep>,
    sweeps_dispatched: usize,
    escalation_counts: BTreeMap<Escalation, usize>,
}

impl BacklogDrainer {
    /// An empty drainer.
    pub fn new() -> Self {
        BacklogDrainer::default()
    }

    /// Consumes a closed incident's escalations. Every escalation is tallied;
    /// a `StressTestSweep` over a non-empty eviction set additionally
    /// dispatches a sweep that completes after the tester's symptom-specific
    /// duration.
    pub fn dispatch(&mut self, job: &str, dossier: &IncidentDossier, now: SimTime) {
        for &escalation in &dossier.classification.escalations {
            *self.escalation_counts.entry(escalation).or_insert(0) += 1;
            if escalation != Escalation::StressTestSweep || dossier.evicted.is_empty() {
                continue;
            }
            self.sweeps_dispatched += 1;
            // Per-machine pass/fail from the *recorded* eviction events: an
            // over-eviction flag means the machine was a healthy hostage and
            // will pass the sweep. Dossiers without per-machine events fall
            // back to the incident-level flag.
            let mut over_flags: BTreeMap<MachineId, bool> = BTreeMap::new();
            for entry in &dossier.capture.window {
                if let RecorderEvent::Eviction {
                    machine,
                    over_eviction,
                } = entry.event
                {
                    over_flags.insert(machine, over_eviction);
                }
            }
            let mut passed = Vec::new();
            let mut failed = Vec::new();
            for &machine in &dossier.evicted {
                let over = over_flags
                    .get(&machine)
                    .copied()
                    .unwrap_or(dossier.over_evicted);
                if over {
                    passed.push(machine);
                } else {
                    failed.push(machine);
                }
            }
            // The sweep is scheduled off what the control plane *concluded*,
            // not the injector's hidden ground truth — same recorded-data
            // contract as the pass/fail flags above.
            let duration = self
                .tester
                .resolution_time(dossier.kind, dossier.concluded_cause)
                .unwrap_or(GENERIC_SWEEP);
            self.pending.push(SweepTicket {
                job: job.to_string(),
                seq: dossier.seq,
                passed,
                failed,
                dispatched_at: now,
                completes_at: now + duration,
            });
        }
    }

    /// Completes every sweep due by `now`, in (completion time, job, seq)
    /// order, and returns the newly completed batch. The caller restocks the
    /// standby pool with each sweep's `passed` machines.
    pub fn tick(&mut self, now: SimTime) -> Vec<CompletedSweep> {
        let (due, pending): (Vec<SweepTicket>, Vec<SweepTicket>) = self
            .pending
            .drain(..)
            .partition(|ticket| ticket.completes_at <= now);
        self.pending = pending;
        let mut batch: Vec<CompletedSweep> = due
            .into_iter()
            .map(|ticket| CompletedSweep {
                completed_at: ticket.completes_at,
                job: ticket.job,
                seq: ticket.seq,
                passed: ticket.passed,
                failed: ticket.failed,
                dispatched_at: ticket.dispatched_at,
            })
            .collect();
        batch.sort_by(|a, b| (a.completed_at, &a.job, a.seq).cmp(&(b.completed_at, &b.job, b.seq)));
        self.completed.extend(batch.iter().cloned());
        batch
    }

    /// Sweeps dispatched so far (completed or not).
    pub fn sweeps_dispatched(&self) -> usize {
        self.sweeps_dispatched
    }

    /// Sweeps still in flight.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Every completed sweep, in completion order.
    pub fn completed(&self) -> &[CompletedSweep] {
        &self.completed
    }

    /// How many of each escalation kind the backlog produced.
    pub fn escalation_counts(&self) -> &BTreeMap<Escalation, usize> {
        &self.escalation_counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byterobust_cluster::{FaultKind, RootCause};
    use byterobust_incident::{
        ClassificationInput, ClassificationMatrix, IncidentCapture, RecorderEntry,
        ResolutionMechanism,
    };
    use byterobust_recovery::FailoverCost;

    /// An analyzer group over-eviction: machine 2 is the culprit, 0/1/3 are
    /// hostages, all recorded per-machine in the capture.
    fn over_evicting_dossier() -> IncidentDossier {
        let at = SimTime::from_hours(2);
        let cost = FailoverCost {
            detection: SimDuration::from_mins(10),
            localization: SimDuration::from_mins(5),
            scheduling: SimDuration::from_secs(60),
            pod_build: SimDuration::ZERO,
            checkpoint_load: SimDuration::from_secs(20),
            recompute: SimDuration::from_secs(30),
        };
        let evicted: Vec<MachineId> = (0..4).map(MachineId).collect();
        let classification =
            ClassificationMatrix::byterobust_default().classify(&ClassificationInput {
                category: FaultKind::JobHang.category(),
                root_cause: RootCause::Infrastructure,
                mechanism: ResolutionMechanism::AnalyzerEviction,
                blast_radius: evicted.len(),
                over_evicted: true,
                reproducible: true,
                downtime: cost.total(),
            });
        assert!(classification
            .escalations
            .contains(&Escalation::StressTestSweep));
        let mut capture = IncidentCapture::empty(7, FaultKind::JobHang, at);
        for machine in 0..4u32 {
            capture.window.push(RecorderEntry {
                at,
                event: RecorderEvent::Eviction {
                    machine: MachineId(machine),
                    over_eviction: machine != 2,
                },
            });
        }
        IncidentDossier {
            seq: 7,
            at,
            kind: FaultKind::JobHang,
            category: FaultKind::JobHang.category(),
            root_cause: RootCause::Infrastructure,
            concluded_cause: RootCause::Infrastructure,
            mechanism: ResolutionMechanism::AnalyzerEviction,
            cost,
            evicted,
            over_evicted: true,
            resumed_step: 500,
            classification,
            capture,
        }
    }

    #[test]
    fn sweep_separates_hostages_from_culprits() {
        let mut drainer = BacklogDrainer::new();
        let dossier = over_evicting_dossier();
        let closed_at = dossier.at + dossier.cost.total();
        drainer.dispatch("alpha", &dossier, closed_at);
        assert_eq!(drainer.sweeps_dispatched(), 1);
        assert_eq!(drainer.pending_len(), 1);

        // Not due yet.
        assert!(drainer.tick(closed_at).is_empty());
        // The JobHang sweep takes 1800 s.
        let done = drainer.tick(closed_at + SimDuration::from_secs(1800));
        assert_eq!(done.len(), 1);
        let sweep = &done[0];
        assert_eq!(sweep.job, "alpha");
        assert_eq!(
            sweep.passed,
            vec![MachineId(0), MachineId(1), MachineId(3)],
            "hostages pass the sweep"
        );
        assert_eq!(sweep.failed, vec![MachineId(2)], "the culprit fails");
        assert_eq!(sweep.machines_swept(), 4);
        assert_eq!(drainer.pending_len(), 0);
        assert_eq!(drainer.completed().len(), 1);
    }

    #[test]
    fn non_sweep_escalations_are_tallied_not_dispatched() {
        let mut drainer = BacklogDrainer::new();
        let dossier = over_evicting_dossier();
        drainer.dispatch("alpha", &dossier, dossier.at);
        let counts = drainer.escalation_counts();
        assert_eq!(counts[&Escalation::HardwareTicket], 1);
        assert_eq!(counts[&Escalation::StressTestSweep], 1);
        assert_eq!(counts[&Escalation::CapacityReview], 1);
        assert!(!counts.contains_key(&Escalation::PageOncall));
    }
}
