//! The fleet event scheduler: which job advances next.
//!
//! A fleet run repeatedly advances the unfinished job whose next event
//! (injected fault or job end) is earliest. The seed-visible contract is:
//!
//! 1. among unfinished jobs, the minimum `next_event_at()` wins;
//! 2. when several jobs tie on that minimum, the tied *job indices in
//!    ascending order* form the candidate list, and one candidate is drawn
//!    uniformly from the fleet's dedicated tie-break `SimRng` stream — and the
//!    stream is consumed **only** when there are two or more candidates.
//!
//! [`HeapScheduler`] implements this contract with a `BinaryHeap` keyed on
//! `(next_event_at, job_index)` so each pick costs O(log J) instead of the
//! O(J) linear scan the runner used before. Entries are lazily invalidated:
//! after a job advances, its fresh `(time, index)` key is pushed and any
//! stale key still in the heap is dropped on pop (a pop is stale when the job
//! has finished or its current `next_event_at()` no longer matches the stored
//! time). Because `Reverse<(SimTime, usize)>` pops in ascending `(time,
//! index)` order, the tied candidates surface exactly in ascending index
//! order — the same list the linear scan builds — so the tie-break stream is
//! consumed identically and the whole interleaving (and therefore
//! `FleetReport::render`) is byte-identical to the naive reference per seed.
//!
//! [`NaiveScanScheduler`] is that retained reference: the original O(J)
//! scan-every-job implementation, kept so the oracle tests can pin the heap
//! byte-identical against it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use byterobust_core::JobExecution;
use byterobust_sim::{SimRng, SimTime};

/// Which scheduler implementation a [`FleetRunner`](crate::FleetRunner) run
/// uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The O(log J) binary-heap scheduler (production default).
    #[default]
    Heap,
    /// The retained O(J) linear-scan reference, for oracle tests.
    NaiveScan,
}

/// Operation counters for one scheduler instance. Self-profiling data for
/// the observability plane: heap and naive runs *differ* here by design
/// (that asymmetry is the point of the comparison), so these counters are
/// never rendered into the deterministic report — they surface through
/// `BENCH_obs.json` instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerOps {
    /// Successful picks (`next` calls that returned a job).
    pub picks: u64,
    /// Keys pushed into the heap (initial seeding, tie losers, reschedules).
    pub heap_pushes: u64,
    /// Lazily-invalidated keys dropped on pop (stale time, finished job, or
    /// adjacent duplicate in the tie gather).
    pub stale_drops: u64,
    /// Picks that consumed the tie-break stream (two or more candidates).
    pub tie_draws: u64,
    /// Per-job examinations by the naive scan (its O(J)-per-pick cost).
    pub scan_comparisons: u64,
}

/// Scheduler state for one fleet run.
#[derive(Debug, Clone)]
pub enum EventScheduler {
    /// Heap-based scheduling (lazy invalidation).
    Heap(HeapScheduler),
    /// Linear-scan reference scheduling.
    NaiveScan(NaiveScanScheduler),
}

impl EventScheduler {
    /// Builds a scheduler of the requested kind, seeded with every job's
    /// initial next-event time.
    pub fn new(kind: SchedulerKind, executions: &[JobExecution]) -> Self {
        match kind {
            SchedulerKind::Heap => EventScheduler::Heap(HeapScheduler::new(executions)),
            SchedulerKind::NaiveScan => EventScheduler::NaiveScan(NaiveScanScheduler::default()),
        }
    }

    /// The operation counters accumulated so far.
    pub fn ops(&self) -> SchedulerOps {
        match self {
            EventScheduler::Heap(heap) => heap.ops,
            EventScheduler::NaiveScan(scan) => scan.ops,
        }
    }

    /// Picks the next job to advance: `(event_time, job_index)`. Returns
    /// `None` when every job is finished. `tie_rng` is consumed only when two
    /// or more jobs tie on the minimum event time.
    pub fn next(
        &mut self,
        executions: &[JobExecution],
        tie_rng: &mut SimRng,
    ) -> Option<(SimTime, usize)> {
        match self {
            EventScheduler::Heap(heap) => heap.next(executions, tie_rng),
            EventScheduler::NaiveScan(scan) => scan.next(executions, tie_rng),
        }
    }

    /// Like [`EventScheduler::next`], but only returns a pick whose event
    /// time is strictly before `bound`. When the earliest live event is at or
    /// past the bound the scheduler state is left untouched — nothing is
    /// popped and the tie-break stream is not consumed — so the very same
    /// pick surfaces on the next call with a larger (or no) bound. This is
    /// what lets the batched fleet stepper enumerate one sim-time quantum at
    /// a time while consuming picks and tie draws in exactly the order the
    /// unbounded per-event loop would.
    ///
    /// `taken` flags jobs already picked in the current batch (the stepper
    /// enumerates a whole batch *before* advancing anyone, so a picked job's
    /// `next_event_at()` still reads its old value). The linear scan skips
    /// flagged jobs; the heap gets the same exclusion for free because a
    /// picked job's key was popped and is only re-pushed by `reschedule`
    /// after its advance. Pass an empty slice when every pick is advanced
    /// before the next call.
    pub fn next_in_window(
        &mut self,
        executions: &[JobExecution],
        tie_rng: &mut SimRng,
        bound: SimTime,
        taken: &[bool],
    ) -> Option<(SimTime, usize)> {
        match self {
            EventScheduler::Heap(heap) => heap.next_in_window(executions, tie_rng, bound),
            EventScheduler::NaiveScan(scan) => {
                scan.next_in_window(executions, tie_rng, bound, taken)
            }
        }
    }

    /// Re-registers a job after it advanced (its `next_event_at` changed).
    /// Finished jobs are not re-registered.
    pub fn reschedule(&mut self, index: usize, executions: &[JobExecution]) {
        if let EventScheduler::Heap(heap) = self {
            heap.reschedule(index, executions);
        }
    }
}

/// O(log J) scheduler: a min-heap of `(next_event_at, job_index)` keys with
/// lazy invalidation.
#[derive(Debug, Clone)]
pub struct HeapScheduler {
    heap: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// Scratch list of tied candidates, reused across picks so the hot loop
    /// allocates nothing after warm-up.
    tied: Vec<(SimTime, usize)>,
    /// Self-profiling counters (never rendered; see [`SchedulerOps`]).
    ops: SchedulerOps,
}

impl HeapScheduler {
    /// Seeds the heap with every unfinished job's next-event time.
    pub fn new(executions: &[JobExecution]) -> Self {
        let heap: BinaryHeap<Reverse<(SimTime, usize)>> = executions
            .iter()
            .enumerate()
            .filter(|(_, execution)| !execution.is_finished())
            .map(|(i, execution)| Reverse((execution.next_event_at(), i)))
            .collect();
        let ops = SchedulerOps {
            heap_pushes: heap.len() as u64,
            ..SchedulerOps::default()
        };
        HeapScheduler {
            heap,
            tied: Vec::new(),
            ops,
        }
    }

    /// Whether a popped key is still current for its job.
    fn is_live(executions: &[JobExecution], at: SimTime, index: usize) -> bool {
        !executions[index].is_finished() && executions[index].next_event_at() == at
    }

    fn next(
        &mut self,
        executions: &[JobExecution],
        tie_rng: &mut SimRng,
    ) -> Option<(SimTime, usize)> {
        // Find the earliest live key, dropping stale pops.
        let (event_at, first) = loop {
            let Reverse((at, index)) = self.heap.pop()?;
            if Self::is_live(executions, at, index) {
                break (at, index);
            }
            self.ops.stale_drops += 1;
        };

        // Gather every live peer tied on the same time. `Reverse<(SimTime,
        // usize)>` pops in ascending (time, index) order, so candidates
        // accumulate in ascending job-index order — the same candidate list
        // the naive scan builds, which keeps the tie-break stream byte-
        // compatible.
        self.tied.clear();
        self.tied.push((event_at, first));
        while let Some(&Reverse((at, index))) = self.heap.peek() {
            if at != event_at {
                break;
            }
            self.heap.pop();
            // Pops arrive in ascending (time, index) order, so a duplicate
            // key for the same job (e.g. a double reschedule) is adjacent —
            // drop it so the tie list holds each candidate exactly once.
            if Self::is_live(executions, at, index) && self.tied.last() != Some(&(at, index)) {
                self.tied.push((at, index));
            } else {
                self.ops.stale_drops += 1;
            }
        }

        let chosen = if self.tied.len() == 1 {
            0
        } else {
            self.ops.tie_draws += 1;
            tie_rng.index(self.tied.len())
        };
        let (_, index) = self.tied[chosen];
        // Losing candidates go back into the heap; the winner is re-pushed by
        // `reschedule` once it has advanced (its key changes).
        for (i, &(at, peer)) in self.tied.iter().enumerate() {
            if i != chosen {
                self.heap.push(Reverse((at, peer)));
                self.ops.heap_pushes += 1;
            }
        }
        self.ops.picks += 1;
        Some((event_at, index))
    }

    fn next_in_window(
        &mut self,
        executions: &[JobExecution],
        tie_rng: &mut SimRng,
        bound: SimTime,
    ) -> Option<(SimTime, usize)> {
        // Drop stale keys until the heap's minimum is live, but never pop the
        // live minimum itself: if it lies at or past the bound it must stay
        // queued (and the tie-break stream untouched) so the next window sees
        // an unchanged scheduler.
        loop {
            let &Reverse((at, index)) = self.heap.peek()?;
            if Self::is_live(executions, at, index) {
                if at >= bound {
                    return None;
                }
                break;
            }
            self.heap.pop();
            self.ops.stale_drops += 1;
        }
        // The earliest live event falls inside the window, so from here this
        // is exactly an unbounded pick: same tie gather, same draw, same
        // loser re-push, same counters.
        self.next(executions, tie_rng)
    }

    fn reschedule(&mut self, index: usize, executions: &[JobExecution]) {
        if !executions[index].is_finished() {
            self.heap
                .push(Reverse((executions[index].next_event_at(), index)));
            self.ops.heap_pushes += 1;
        }
    }
}

/// The retained O(J) reference: scan every job per pick. Semantically the
/// original `FleetRunner::run` selection loop, kept verbatim so the oracle
/// tests can pin the heap scheduler byte-identical against it.
#[derive(Debug, Clone, Default)]
pub struct NaiveScanScheduler {
    /// Self-profiling counters (never rendered; see [`SchedulerOps`]).
    ops: SchedulerOps,
}

impl NaiveScanScheduler {
    fn next(
        &mut self,
        executions: &[JobExecution],
        tie_rng: &mut SimRng,
    ) -> Option<(SimTime, usize)> {
        let mut earliest: Option<SimTime> = None;
        let mut tied: Vec<usize> = Vec::new();
        for (i, execution) in executions.iter().enumerate() {
            self.ops.scan_comparisons += 1;
            if execution.is_finished() {
                continue;
            }
            let at = execution.next_event_at();
            match earliest {
                None => {
                    earliest = Some(at);
                    tied = vec![i];
                }
                Some(best) if at < best => {
                    earliest = Some(at);
                    tied = vec![i];
                }
                Some(best) if at == best => tied.push(i),
                Some(_) => {}
            }
        }
        let event_at = earliest?;
        let index = if tied.len() == 1 {
            tied[0]
        } else {
            self.ops.tie_draws += 1;
            tied[tie_rng.index(tied.len())]
        };
        self.ops.picks += 1;
        Some((event_at, index))
    }

    fn next_in_window(
        &mut self,
        executions: &[JobExecution],
        tie_rng: &mut SimRng,
        bound: SimTime,
        taken: &[bool],
    ) -> Option<(SimTime, usize)> {
        // Same scan as `next`, but jobs already picked this batch are skipped
        // and the earliest event is only *taken* when it falls inside the
        // window; otherwise the tie-break stream stays untouched and the pick
        // surfaces unchanged on the next window.
        let mut earliest: Option<SimTime> = None;
        let mut tied: Vec<usize> = Vec::new();
        for (i, execution) in executions.iter().enumerate() {
            self.ops.scan_comparisons += 1;
            if execution.is_finished() || taken.get(i).copied().unwrap_or(false) {
                continue;
            }
            let at = execution.next_event_at();
            match earliest {
                None => {
                    earliest = Some(at);
                    tied = vec![i];
                }
                Some(best) if at < best => {
                    earliest = Some(at);
                    tied = vec![i];
                }
                Some(best) if at == best => tied.push(i),
                Some(_) => {}
            }
        }
        let event_at = earliest?;
        if event_at >= bound {
            return None;
        }
        let index = if tied.len() == 1 {
            tied[0]
        } else {
            self.ops.tie_draws += 1;
            tied[tie_rng.index(tied.len())]
        };
        self.ops.picks += 1;
        Some((event_at, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byterobust_core::JobConfig;

    fn executions(n: usize) -> Vec<JobExecution> {
        (0..n)
            .map(|i| JobExecution::new(JobConfig::small_test(), 100 + i as u64))
            .collect()
    }

    #[test]
    fn heap_and_naive_agree_pick_by_pick() {
        let mut execs = executions(4);
        let mut heap = EventScheduler::new(SchedulerKind::Heap, &execs);
        let mut naive = EventScheduler::new(SchedulerKind::NaiveScan, &execs);
        let mut heap_rng = SimRng::new(0xF1EE7);
        let mut naive_rng = SimRng::new(0xF1EE7);
        // Drive the real executions with the heap's picks and check the naive
        // scan would have picked identically at every step.
        loop {
            let expected = naive.next(&execs, &mut naive_rng);
            let got = heap.next(&execs, &mut heap_rng);
            assert_eq!(got, expected);
            let Some((_, index)) = got else { break };
            execs[index].advance();
            heap.reschedule(index, &execs);
        }
        assert!(execs.iter().all(|e| e.is_finished()));
        // Both schedulers made the same picks and drew the tie stream the
        // same number of times; only the per-implementation cost counters
        // (heap pushes vs. scan comparisons) differ.
        let (heap_ops, naive_ops) = (heap.ops(), naive.ops());
        assert_eq!(heap_ops.picks, naive_ops.picks);
        assert!(heap_ops.picks > 0);
        assert_eq!(heap_ops.tie_draws, naive_ops.tie_draws);
        assert_eq!(heap_ops.scan_comparisons, 0, "the heap never scans");
        assert!(naive_ops.scan_comparisons >= naive_ops.picks * 4);
        assert_eq!(naive_ops.heap_pushes, 0, "the scan never pushes");
        assert!(heap_ops.heap_pushes > 0);
    }

    #[test]
    fn ties_surface_in_ascending_index_order() {
        // Fresh executions all start with some next event; two identical
        // configs with identical seeds tie exactly.
        let mut execs = vec![
            JobExecution::new(JobConfig::small_test(), 42),
            JobExecution::new(JobConfig::small_test(), 42),
            JobExecution::new(JobConfig::small_test(), 42),
        ];
        let at = execs[0].next_event_at();
        assert!(execs.iter().all(|e| e.next_event_at() == at));
        let mut heap = EventScheduler::new(SchedulerKind::Heap, &execs);
        let mut naive = EventScheduler::new(SchedulerKind::NaiveScan, &execs);
        // Same tie-break stream must choose the same index from {0, 1, 2}.
        for seed in 0..16u64 {
            let pick_heap = heap
                .next(&execs, &mut SimRng::new(seed))
                .expect("jobs pending");
            let pick_naive = naive
                .next(&execs, &mut SimRng::new(seed))
                .expect("jobs pending");
            assert_eq!(pick_heap, pick_naive, "seed {seed}");
            // Restore the heap for the next probe: the winner was consumed.
            heap.reschedule(pick_heap.1, &execs);
        }
        // Advancing the chosen job breaks the tie for subsequent picks.
        let (_, index) = heap.next(&execs, &mut SimRng::new(1)).unwrap();
        execs[index].advance();
        heap.reschedule(index, &execs);
        let (_, next_index) = heap.next(&execs, &mut SimRng::new(2)).unwrap();
        assert!(!execs[next_index].is_finished());
    }

    #[test]
    fn windowed_picks_match_unbounded_picks() {
        use byterobust_sim::SimDuration;
        for kind in [SchedulerKind::Heap, SchedulerKind::NaiveScan] {
            // Drive two copies of the same fleet to completion: one through
            // plain `next`, one through `next_in_window` with a small sliding
            // window. The pick sequences and tie-stream consumption must
            // match exactly — empty windows must not disturb either.
            let mut plain_execs = executions(4);
            let mut windowed_execs = executions(4);
            let mut plain = EventScheduler::new(kind, &plain_execs);
            let mut windowed = EventScheduler::new(kind, &windowed_execs);
            let mut plain_rng = SimRng::new(0xBEEF);
            let mut windowed_rng = SimRng::new(0xBEEF);
            let quantum = SimDuration::from_mins(30);
            let mut cursor = SimTime::ZERO;
            loop {
                let expected = plain.next(&plain_execs, &mut plain_rng);
                let got = loop {
                    let bound = cursor + quantum;
                    match windowed.next_in_window(&windowed_execs, &mut windowed_rng, bound, &[]) {
                        Some(pick) => break Some(pick),
                        None if windowed_execs.iter().all(|e| e.is_finished()) => break None,
                        None => cursor = bound,
                    }
                };
                assert_eq!(got, expected, "{kind:?}");
                let Some((_, index)) = got else { break };
                plain_execs[index].advance();
                plain.reschedule(index, &plain_execs);
                windowed_execs[index].advance();
                windowed.reschedule(index, &windowed_execs);
            }
            assert!(plain_execs.iter().all(|e| e.is_finished()));
            assert_eq!(plain.ops().picks, windowed.ops().picks, "{kind:?}");
            assert_eq!(plain.ops().tie_draws, windowed.ops().tie_draws, "{kind:?}");
        }
    }

    #[test]
    fn stale_keys_are_dropped() {
        let mut execs = executions(2);
        let mut heap = EventScheduler::new(SchedulerKind::Heap, &execs);
        let mut rng = SimRng::new(7);
        let (_, index) = heap.next(&execs, &mut rng).unwrap();
        // Advance the job but ALSO push a duplicate fresh key: the duplicate
        // becomes stale after the next advance and must be skipped silently.
        execs[index].advance();
        heap.reschedule(index, &execs);
        heap.reschedule(index, &execs);
        let mut picks = 0;
        while let Some((_, i)) = heap.next(&execs, &mut rng) {
            execs[i].advance();
            heap.reschedule(i, &execs);
            picks += 1;
            if picks > 10_000 {
                panic!("scheduler failed to terminate");
            }
        }
        assert!(execs.iter().all(|e| e.is_finished()));
    }
}
