//! The fleet report: per-job results plus the fleet-level aggregates, with a
//! deterministic plain-text rendering.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use byterobust_cluster::{MachineId, MigrationRecord};
use byterobust_core::JobReport;
use byterobust_incident::Escalation;
use byterobust_obs::{AlertTimeline, FaultWindow, Trace};

use crate::broker::BrokerSummary;
use crate::drainer::CompletedSweep;
use crate::query::{alert_get, FleetQuery, QueryResponse, WarehouseDigest};
use crate::scheduler::SchedulerOps;
use crate::warehouse::IncidentWarehouse;

/// One job's slice of the fleet run.
#[derive(Debug, Clone)]
pub struct FleetJobReport {
    /// The fleet label (warehouse shard key).
    pub label: String,
    /// The per-job seed forked from the fleet seed.
    pub seed: u64,
    /// Machines the job occupies.
    pub machines: usize,
    /// The job's full report, identical in shape to a solo run's.
    pub report: JobReport,
}

/// What the backlog drainer processed over the run.
#[derive(Debug, Clone)]
pub struct DrainSummary {
    /// Stress-test sweeps dispatched from `StressTestSweep` backlog items.
    pub sweeps_dispatched: usize,
    /// Sweeps that completed while jobs were still running (their cleared
    /// machines re-entered the shared pool in-run).
    pub sweeps_completed_in_run: usize,
    /// Sweeps that completed only at the fleet horizon.
    pub sweeps_completed_post_run: usize,
    /// Machines that passed a sweep and returned to the shared standby pool.
    pub machines_returned_to_standby: usize,
    /// Machines a sweep confirmed faulty (they keep their hardware tickets).
    pub machines_confirmed_faulty: usize,
    /// Every escalation the backlog produced, by kind.
    pub escalation_counts: BTreeMap<Escalation, usize>,
}

/// The result of one fleet run. [`FleetReport::render`] is byte-identical
/// across runs with the same seed.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The fleet seed.
    pub seed: u64,
    /// Per-job results, in fleet configuration order.
    pub jobs: Vec<FleetJobReport>,
    /// Scheduler events processed over the run (segments advanced: incidents
    /// plus job-end events). The numerator of the throughput benchmarks;
    /// deliberately not rendered so `render()` stays comparable across
    /// scheduler implementations by construction.
    pub events_processed: usize,
    /// The merged sim-time trace: every controller's incident spans under
    /// its job label, plus the fleet scope (job stepping, warehouse inserts,
    /// broker interventions). A pure function of the seed; the rendered
    /// report carries only its span-kind digest.
    pub trace: Trace,
    /// Scheduler operation counters. Self-profiling domain — heap and naive
    /// runs differ here by design — so, like `events_processed`, deliberately
    /// never rendered.
    pub scheduler_ops: SchedulerOps,
    /// The indexed cross-job incident warehouse.
    pub warehouse: IncidentWarehouse,
    /// Every completed stress-test sweep, in completion order.
    pub completed_sweeps: Vec<CompletedSweep>,
    /// Backlog-drain totals.
    pub drain: DrainSummary,
    /// Machines the ledger flagged, with their cross-job incident counts.
    pub repeat_offenders: Vec<(MachineId, usize)>,
    /// Incidents across jobs at or above which a machine was flagged.
    pub repeat_offender_threshold: usize,
    /// Target size of the shared warm-standby pool.
    pub shared_pool_target: usize,
    /// Standbys ready in the shared pool when the fleet finished.
    pub shared_pool_ready_final: usize,
    /// Grant requests the pool could not fully cover (capacity starvation).
    pub pool_shortfall_events: usize,
    /// Machines across all requests the pool could not cover.
    pub pool_shortfall_machines: usize,
    /// What per-job (unshared) P99 pools would have provisioned in total.
    pub solo_pool_sum: usize,
    /// Cross-job machine migrations the broker performed, in grant order.
    pub migrations: Vec<MigrationRecord>,
    /// What the fleet broker did (`None` when the broker was disabled). The
    /// rendered report only carries a broker section when the broker actually
    /// intervened, so a brokered run of a non-starved fleet stays
    /// byte-identical to a broker-disabled run.
    pub broker: Option<BrokerSummary>,
    /// The canonical alert timeline (empty unless
    /// [`crate::runner::FleetConfig::alert_rules`] was set). Sim-time domain:
    /// byte-identical across schedulers, spill modes, and host threading.
    /// Deliberately not part of [`FleetReport::render`] — attaching rules
    /// must leave the rendered report byte-identical — the digest is its own
    /// document, [`FleetReport::render_alert_digest`].
    pub alerts: AlertTimeline,
}

impl FleetReport {
    /// Answers any [`FleetQuery`] against the finished run — the post-hoc
    /// half of the unified query API. The warehouse arms (incidents,
    /// dossiers, digest) go through [`IncidentWarehouse::query`] and the
    /// index aggregates; the span and alert arms filter the merged trace and
    /// the canonical alert timeline. Post-seal, every warehouse-backed
    /// answer renders byte-identical to
    /// [`WarehouseService::answer`](crate::service::WarehouseService::answer)
    /// at the final epoch (pinned by the agreement oracle) — same vocabulary,
    /// three serving paths.
    pub fn answer(&self, query: &FleetQuery) -> QueryResponse {
        match query {
            FleetQuery::Incidents(inner) => QueryResponse::incidents(
                self.warehouse
                    .query(inner)
                    .into_iter()
                    .map(|hit| (hit.job, hit.dossier)),
            ),
            FleetQuery::Dossiers(inner) => QueryResponse::dossiers(
                self.warehouse
                    .query(inner)
                    .into_iter()
                    .map(|hit| (hit.job, hit.dossier)),
            ),
            FleetQuery::Digest => {
                let mut jobs: Vec<(String, u64)> = self
                    .warehouse
                    .epoch_heads()
                    .into_iter()
                    .filter(|head| head.len > 0)
                    .map(|head| (head.label, head.len as u64))
                    .collect();
                jobs.sort();
                QueryResponse::Digest(WarehouseDigest {
                    total: self.warehouse.len() as u64,
                    jobs,
                    severity: self
                        .warehouse
                        .severity_counts()
                        .into_iter()
                        .map(|(severity, count)| (severity, count as u64))
                        .collect(),
                    category: self
                        .warehouse
                        .category_counts()
                        .into_iter()
                        .map(|(category, count)| (category, count as u64))
                        .collect(),
                })
            }
            FleetQuery::Spans(inner) => QueryResponse::Spans(
                byterobust_obs::trace_get(&self.trace, inner)
                    .into_iter()
                    .cloned()
                    .collect(),
            ),
            FleetQuery::Alerts(inner) => QueryResponse::Alerts(
                self.alerts.rule_set.clone(),
                alert_get(&self.alerts, inner)
                    .into_iter()
                    .cloned()
                    .collect(),
            ),
        }
    }

    /// Fleet-wide effective-training-time ratio: total productive time over
    /// total accounted time, across every job.
    pub fn fleet_ettr(&self) -> f64 {
        let productive: f64 = self
            .jobs
            .iter()
            .map(|job| job.report.ettr.productive_time().as_secs_f64())
            .sum();
        let total: f64 = self
            .jobs
            .iter()
            .map(|job| job.report.ettr.total_time().as_secs_f64())
            .sum();
        if total <= 0.0 {
            1.0
        } else {
            productive / total
        }
    }

    /// Total incidents across the fleet.
    pub fn total_incidents(&self) -> usize {
        self.jobs.iter().map(|job| job.report.incidents.len()).sum()
    }

    /// Fleet-wide unproductive time in seconds, across every job.
    pub fn fleet_unproductive_secs(&self) -> f64 {
        self.jobs
            .iter()
            .map(|job| {
                job.report.ettr.total_time().as_secs_f64()
                    - job.report.ettr.productive_time().as_secs_f64()
            })
            .sum()
    }

    /// Incidents whose recovery was delayed by capacity starvation (the
    /// shared pool could not cover their evictions), per job label.
    pub fn starved_incidents_by_job(&self) -> BTreeMap<&str, usize> {
        let mut counts = BTreeMap::new();
        for job in &self.jobs {
            let starved = job
                .report
                .incident_store
                .all()
                .iter()
                .filter(|dossier| dossier.capture.capacity_starved())
                .count();
            if starved > 0 {
                counts.insert(job.label.as_str(), starved);
            }
        }
        counts
    }

    /// Total capacity-starved incidents across the fleet.
    pub fn starved_incidents(&self) -> usize {
        self.starved_incidents_by_job().values().sum()
    }

    /// Ground truth for lead-time scoring: one [`FaultWindow`] per incident
    /// across every job — injection instant, end of the controller's own
    /// detection phase, end of the full recovery — sorted chronologically.
    /// Feed this with [`FleetReport::alerts`] to
    /// [`byterobust_obs::score_alerts`].
    pub fn fault_windows(&self) -> Vec<FaultWindow> {
        let mut windows: Vec<FaultWindow> = self
            .jobs
            .iter()
            .flat_map(|job| {
                job.report
                    .incident_store
                    .all()
                    .iter()
                    .map(|dossier| FaultWindow {
                        injected_at: dossier.at,
                        detected_at: dossier.at + dossier.cost.detection,
                        closed_at: dossier.at + dossier.cost.total(),
                    })
            })
            .collect();
        windows.sort();
        windows
    }

    /// Renders the alert digest (a separate document from
    /// [`FleetReport::render`], which stays byte-identical whether or not
    /// rules were attached). Deterministic like the timeline itself.
    pub fn render_alert_digest(&self) -> String {
        self.alerts.render_digest()
    }

    /// Renders the report as a deterministic plain-text document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "==== FleetReport: {} concurrent jobs (seed {}) ====",
            self.jobs.len(),
            self.seed
        );

        let _ = writeln!(out, "\n-- jobs");
        for job in &self.jobs {
            let (evicted, over) = job.report.eviction_stats();
            let _ = writeln!(
                out,
                "  {:<12} machines {:>4} | incidents {:>3} | ETTR {:.4} | final step {:>6} | evicted {} ({} over)",
                job.label,
                job.machines,
                job.report.incidents.len(),
                job.report.ettr.cumulative_ettr(),
                job.report.final_step,
                evicted,
                over,
            );
        }

        let _ = writeln!(
            out,
            "\n-- incident warehouse ({} incidents, {} shards)",
            self.warehouse.len(),
            self.warehouse.jobs().len()
        );
        for (severity, count) in self.warehouse.severity_counts() {
            let _ = writeln!(out, "  {:>5}: {}", severity.label(), count);
        }
        for (category, count) in self.warehouse.category_counts() {
            let _ = writeln!(out, "  {category:?}: {count}");
        }
        let _ = writeln!(
            out,
            "  attribution accuracy (concluded vs ground truth): {:.4}",
            self.warehouse.attribution_accuracy()
        );

        let _ = writeln!(
            out,
            "\n-- repeat offenders (>= {} incidents across jobs)",
            self.repeat_offender_threshold
        );
        if self.repeat_offenders.is_empty() {
            let _ = writeln!(out, "  none");
        }
        for (machine, count) in &self.repeat_offenders {
            let _ = writeln!(out, "  {machine}: {count} incidents");
        }

        let _ = writeln!(out, "\n-- escalation backlog drained");
        for (escalation, count) in &self.drain.escalation_counts {
            let _ = writeln!(out, "  {escalation:?}: {count}");
        }
        let _ = writeln!(
            out,
            "  sweeps: {} dispatched, {} completed in-run, {} after the horizon",
            self.drain.sweeps_dispatched,
            self.drain.sweeps_completed_in_run,
            self.drain.sweeps_completed_post_run,
        );
        let _ = writeln!(
            out,
            "  swept machines returned to standby: {} | confirmed faulty: {}",
            self.drain.machines_returned_to_standby, self.drain.machines_confirmed_faulty,
        );
        for sweep in &self.completed_sweeps {
            let _ = writeln!(
                out,
                "  sweep {}#{} at {}: {} passed, {} failed",
                sweep.job,
                sweep.seq,
                sweep.completed_at,
                sweep.passed.len(),
                sweep.failed.len(),
            );
        }

        let _ = writeln!(
            out,
            "\n-- shared standby pool: target {} (vs {} if provisioned per job), {} ready at end",
            self.shared_pool_target, self.solo_pool_sum, self.shared_pool_ready_final,
        );
        let _ = writeln!(
            out,
            "  starvation: {} request(s) shortfalled ({} machine(s) uncovered by ready standbys)",
            self.pool_shortfall_events, self.pool_shortfall_machines,
        );

        // The broker section exists only when the broker intervened: a
        // brokered run of a non-starved fleet renders byte-identically to a
        // broker-disabled run.
        if let Some(broker) = self
            .broker
            .as_ref()
            .filter(|summary| summary.has_activity())
        {
            let _ = writeln!(out, "\n-- fleet broker");
            for line in &broker.lines {
                let _ = writeln!(out, "{line}");
            }
            let _ = writeln!(
                out,
                "  totals: {} slot(s) preempted, {} machine(s) migrated, {} job(s) queued, \
                 {} machine(s) still rescheduled",
                broker.preempted_slots,
                broker.migrated_machines,
                broker.queued_jobs,
                broker.residual_shortfall_machines,
            );
        }

        // Observability digest: span-kind counts from the merged sim-time
        // trace. Strictly sim-time domain (scheduler op counters and other
        // wall-clock self-profiling stay out), and zero-count kinds are
        // omitted, so a brokered-but-idle run still renders byte-identically
        // to a broker-disabled run.
        if !self.trace.spans.is_empty() {
            let _ = writeln!(
                out,
                "\n-- observability: {} trace span(s) across {} scope(s)",
                self.trace.spans.len(),
                self.trace.scopes().len(),
            );
            for (kind, count) in self.trace.counts_by_kind() {
                if count > 0 {
                    let _ = writeln!(out, "  {}: {}", kind.label(), count);
                }
            }
        }

        let _ = writeln!(
            out,
            "\nfleet ETTR = {:.4} over {} incidents",
            self.fleet_ettr(),
            self.total_incidents()
        );
        out
    }
}
