//! The failure-classification matrix: `REC-*` severity classes and
//! escalation rules.
//!
//! Production incident response keys on a small classification matrix: given
//! *what kind* of incident it was (category, root cause), *how* it was
//! resolved (mechanism), and *how much* of the fleet it touched (blast
//! radius), assign a severity class and decide which follow-up channels must
//! be notified. This module reproduces that shape for the simulator: every
//! closed incident is classified into [`Severity`] `Sev1`–`Sev4` under a
//! stable `REC-*` code, with [`Escalation`]s that feed the operational
//! backlog (hardware tickets, stress-test sweeps, code audits, capacity
//! reviews, on-call pages).

use serde::{Deserialize, Serialize};

use byterobust_cluster::{FaultCategory, RootCause};
use byterobust_sim::SimDuration;

use crate::mechanism::ResolutionMechanism;

/// Severity classes, most severe first. The derived ordering makes `Sev1`
/// compare *smallest*, so "at least Sev2" is `severity <= Severity::Sev2`;
/// use [`Severity::is_at_least`] rather than spelling that out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Fleet-level impact or prolonged outage; a human is paged.
    Sev1,
    /// Significant impact: multi-machine blast radius, over-eviction, or an
    /// SDC-class fault that escaped stop-time checks.
    Sev2,
    /// Routine single-machine hardware loss or a code defect rolled back.
    Sev3,
    /// Fully absorbed: transient reattempt or planned hot update.
    Sev4,
}

impl Severity {
    /// All severities, most severe first.
    pub const ALL: [Severity; 4] = [
        Severity::Sev1,
        Severity::Sev2,
        Severity::Sev3,
        Severity::Sev4,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Sev1 => "SEV-1",
            Severity::Sev2 => "SEV-2",
            Severity::Sev3 => "SEV-3",
            Severity::Sev4 => "SEV-4",
        }
    }

    /// Whether `self` is at least as severe as `floor`.
    pub fn is_at_least(self, floor: Severity) -> bool {
        self <= floor
    }

    /// The more severe of two severities.
    pub fn escalate_to(self, other: Severity) -> Severity {
        self.min(other)
    }
}

/// Follow-up channels an incident can escalate into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Escalation {
    /// Page the on-call operator (Sev1 only).
    PageOncall,
    /// File a hardware repair ticket for the evicted machines.
    HardwareTicket,
    /// Queue the implicated (or over-evicted) machines for a background
    /// stress-test sweep to separate true culprits from healthy hostages.
    StressTestSweep,
    /// Audit the rolled-back code change before it is re-landed.
    CodeReviewAudit,
    /// Review warm-standby pool sizing: the blast radius consumed an unusual
    /// share of the reserve.
    CapacityReview,
}

impl Escalation {
    /// Human-readable description for postmortem follow-up lists.
    pub fn description(self) -> &'static str {
        match self {
            Escalation::PageOncall => "page the on-call operator for manual review",
            Escalation::HardwareTicket => "file a hardware repair ticket for the evicted machines",
            Escalation::StressTestSweep => {
                "queue implicated machines for a background stress-test sweep"
            }
            Escalation::CodeReviewAudit => "audit the rolled-back code change before re-landing",
            Escalation::CapacityReview => "review warm-standby pool sizing against blast radius",
        }
    }
}

/// Everything the matrix keys on for one incident.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassificationInput {
    /// Incident category (explicit / implicit / manual restart).
    pub category: FaultCategory,
    /// Ground-truth root cause.
    pub root_cause: RootCause,
    /// Mechanism that finally resolved the incident.
    pub mechanism: ResolutionMechanism,
    /// Number of machines evicted (the blast radius).
    pub blast_radius: usize,
    /// Whether healthy machines were knowingly evicted.
    pub over_evicted: bool,
    /// Whether the fault reproduced under stop-time diagnostics.
    pub reproducible: bool,
    /// Total unproductive time the incident cost.
    pub downtime: SimDuration,
}

/// The classification the matrix assigns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Classification {
    /// Assigned severity class.
    pub severity: Severity,
    /// Stable `REC-*` code naming the matrix row that fired.
    pub rec_code: &'static str,
    /// Escalations to follow up on, most urgent first, deduplicated.
    pub escalations: Vec<Escalation>,
}

impl Classification {
    /// Whether this classification demands any follow-up at all.
    pub fn needs_follow_up(&self) -> bool {
        !self.escalations.is_empty()
    }
}

/// The classification matrix with its escalation thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassificationMatrix {
    /// Blast radius at or above which an incident is at least Sev2.
    pub sev2_blast_radius: usize,
    /// Blast radius at or above which an incident is Sev1 (a whole pipeline
    /// stage or more went down at once).
    pub sev1_blast_radius: usize,
    /// Downtime at or above which an incident is Sev1 regardless of blast
    /// radius (the paper keeps unproductive time well under an hour per
    /// incident; exceeding it means the automation failed to contain it).
    pub sev1_downtime: SimDuration,
    /// Blast radius at or above which a capacity review is queued.
    pub capacity_review_blast_radius: usize,
}

impl ClassificationMatrix {
    /// The default thresholds used by the reproduction.
    pub fn byterobust_default() -> Self {
        ClassificationMatrix {
            sev2_blast_radius: 2,
            sev1_blast_radius: 8,
            sev1_downtime: SimDuration::from_hours(2),
            capacity_review_blast_radius: 4,
        }
    }

    /// Classifies one incident: picks the base `REC-*` row from the
    /// resolution mechanism, then applies the escalation rules (blast radius,
    /// over-eviction, irreproducibility, downtime) which can only *raise*
    /// severity, never lower it.
    pub fn classify(&self, input: &ClassificationInput) -> Classification {
        // Base row: how the incident was resolved.
        let (mut severity, rec_code) = match input.mechanism {
            ResolutionMechanism::HotUpdate => (Severity::Sev4, "REC-HU"),
            ResolutionMechanism::Reattempt => (Severity::Sev4, "REC-RT"),
            ResolutionMechanism::Rollback => (Severity::Sev3, "REC-RB"),
            ResolutionMechanism::ImmediateEviction => (Severity::Sev3, "REC-EV1"),
            ResolutionMechanism::StopTimeEviction => (Severity::Sev3, "REC-EV2"),
            ResolutionMechanism::DualPhaseReplay => (Severity::Sev2, "REC-RPL"),
            ResolutionMechanism::AnalyzerEviction => (Severity::Sev2, "REC-AGG"),
        };
        let mut escalations = Vec::new();

        // Machine loss always feeds the repair pipeline.
        if input.blast_radius > 0 {
            escalations.push(Escalation::HardwareTicket);
        }
        // Multi-machine blast radius raises severity.
        if input.blast_radius >= self.sev2_blast_radius {
            severity = severity.escalate_to(Severity::Sev2);
        }
        // Over-eviction means healthy machines are hostage until a stress
        // sweep clears them (§9's false-positive discussion).
        if input.over_evicted {
            severity = severity.escalate_to(Severity::Sev2);
            escalations.push(Escalation::StressTestSweep);
        }
        // An SDC-class fault that did not reproduce under stop-time checks is
        // exactly the kind that recurs; sweep it even if eviction "worked".
        if !input.reproducible {
            severity = severity.escalate_to(Severity::Sev2);
            escalations.push(Escalation::StressTestSweep);
        }
        // Rollbacks audit the offending change.
        if input.mechanism == ResolutionMechanism::Rollback
            || input.root_cause == RootCause::UserCode
        {
            escalations.push(Escalation::CodeReviewAudit);
        }
        // Large evictions dent the standby reserve.
        if input.blast_radius >= self.capacity_review_blast_radius {
            escalations.push(Escalation::CapacityReview);
        }
        // Catastrophic blast radius or uncontained downtime pages a human.
        if input.blast_radius >= self.sev1_blast_radius || input.downtime >= self.sev1_downtime {
            severity = Severity::Sev1;
        }
        if severity == Severity::Sev1 {
            escalations.push(Escalation::PageOncall);
        }

        escalations.sort();
        escalations.dedup();
        Classification {
            severity,
            rec_code,
            escalations,
        }
    }
}

impl Default for ClassificationMatrix {
    fn default() -> Self {
        ClassificationMatrix::byterobust_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(mechanism: ResolutionMechanism, blast_radius: usize) -> ClassificationInput {
        ClassificationInput {
            category: FaultCategory::Explicit,
            root_cause: RootCause::Infrastructure,
            mechanism,
            blast_radius,
            over_evicted: false,
            reproducible: true,
            downtime: SimDuration::from_mins(20),
        }
    }

    #[test]
    fn severity_ordering_and_floor() {
        assert!(Severity::Sev1.is_at_least(Severity::Sev2));
        assert!(Severity::Sev2.is_at_least(Severity::Sev2));
        assert!(!Severity::Sev3.is_at_least(Severity::Sev2));
        assert_eq!(Severity::Sev3.escalate_to(Severity::Sev2), Severity::Sev2);
        assert_eq!(Severity::Sev2.escalate_to(Severity::Sev4), Severity::Sev2);
    }

    #[test]
    fn hot_update_and_reattempt_are_routine() {
        let matrix = ClassificationMatrix::byterobust_default();
        let hot = matrix.classify(&ClassificationInput {
            category: FaultCategory::ManualRestart,
            root_cause: RootCause::Human,
            ..input(ResolutionMechanism::HotUpdate, 0)
        });
        assert_eq!(hot.severity, Severity::Sev4);
        assert_eq!(hot.rec_code, "REC-HU");
        assert!(!hot.needs_follow_up());

        let reattempt = matrix.classify(&ClassificationInput {
            root_cause: RootCause::Transient,
            ..input(ResolutionMechanism::Reattempt, 0)
        });
        assert_eq!(reattempt.severity, Severity::Sev4);
        assert!(!reattempt.needs_follow_up());
    }

    #[test]
    fn single_machine_eviction_is_sev3_with_hardware_ticket() {
        let matrix = ClassificationMatrix::byterobust_default();
        let class = matrix.classify(&input(ResolutionMechanism::ImmediateEviction, 1));
        assert_eq!(class.severity, Severity::Sev3);
        assert_eq!(class.rec_code, "REC-EV1");
        assert_eq!(class.escalations, vec![Escalation::HardwareTicket]);
    }

    #[test]
    fn blast_radius_escalates_severity() {
        let matrix = ClassificationMatrix::byterobust_default();
        assert_eq!(
            matrix
                .classify(&input(ResolutionMechanism::StopTimeEviction, 1))
                .severity,
            Severity::Sev3
        );
        assert_eq!(
            matrix
                .classify(&input(ResolutionMechanism::StopTimeEviction, 2))
                .severity,
            Severity::Sev2
        );
        let catastrophic = matrix.classify(&input(ResolutionMechanism::StopTimeEviction, 8));
        assert_eq!(catastrophic.severity, Severity::Sev1);
        assert!(catastrophic.escalations.contains(&Escalation::PageOncall));
        assert!(catastrophic
            .escalations
            .contains(&Escalation::CapacityReview));
    }

    #[test]
    fn over_eviction_queues_stress_sweep() {
        let matrix = ClassificationMatrix::byterobust_default();
        let class = matrix.classify(&ClassificationInput {
            category: FaultCategory::Implicit,
            over_evicted: true,
            ..input(ResolutionMechanism::AnalyzerEviction, 4)
        });
        assert_eq!(class.severity, Severity::Sev2);
        assert_eq!(class.rec_code, "REC-AGG");
        assert!(class.escalations.contains(&Escalation::StressTestSweep));
        assert!(class.escalations.contains(&Escalation::CapacityReview));
    }

    #[test]
    fn irreproducible_sdc_is_at_least_sev2() {
        let matrix = ClassificationMatrix::byterobust_default();
        let class = matrix.classify(&ClassificationInput {
            category: FaultCategory::Implicit,
            reproducible: false,
            ..input(ResolutionMechanism::StopTimeEviction, 1)
        });
        assert!(class.severity.is_at_least(Severity::Sev2));
        assert!(class.escalations.contains(&Escalation::StressTestSweep));
    }

    #[test]
    fn rollback_audits_the_change() {
        let matrix = ClassificationMatrix::byterobust_default();
        let class = matrix.classify(&ClassificationInput {
            root_cause: RootCause::UserCode,
            ..input(ResolutionMechanism::Rollback, 0)
        });
        assert_eq!(class.severity, Severity::Sev3);
        assert_eq!(class.rec_code, "REC-RB");
        assert_eq!(class.escalations, vec![Escalation::CodeReviewAudit]);
    }

    #[test]
    fn uncontained_downtime_pages_oncall() {
        let matrix = ClassificationMatrix::byterobust_default();
        let class = matrix.classify(&ClassificationInput {
            downtime: SimDuration::from_hours(3),
            ..input(ResolutionMechanism::Reattempt, 0)
        });
        assert_eq!(class.severity, Severity::Sev1);
        assert!(class.escalations.contains(&Escalation::PageOncall));
    }
}
