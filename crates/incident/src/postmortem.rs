//! The postmortem generator: renders a closed incident into a structured,
//! human-readable postmortem artifact.
//!
//! A [`Postmortem`] is generated from an [`IncidentDossier`]
//! — the frozen flight-recorder capture plus the resolution record and its
//! classification — and carries the incident timeline, the evidence each
//! subsystem contributed, the unproductive-time breakdown by recovery phase
//! (summing exactly to the incident's `FailoverCost::total()`), the evicted
//! machines, and the recommended follow-ups derived from the classification
//! matrix.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use byterobust_cluster::{FaultCategory, FaultKind, MachineId, RootCause};
use byterobust_recovery::FailoverCost;
use byterobust_sim::{SimDuration, SimTime};

use crate::classify::Severity;
use crate::mechanism::ResolutionMechanism;
use crate::recorder::{RecorderEntry, RecoveryPhase};
use crate::store::IncidentDossier;

/// Unproductive time charged to one recovery phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// The phase.
    pub phase: RecoveryPhase,
    /// Time charged to it.
    pub duration: SimDuration,
}

impl PhaseCost {
    /// Decomposes a [`FailoverCost`] into the six chronological phases. The
    /// durations sum exactly to `cost.total()`.
    pub fn breakdown(cost: &FailoverCost) -> Vec<PhaseCost> {
        vec![
            PhaseCost {
                phase: RecoveryPhase::Detection,
                duration: cost.detection,
            },
            PhaseCost {
                phase: RecoveryPhase::Localization,
                duration: cost.localization,
            },
            PhaseCost {
                phase: RecoveryPhase::Scheduling,
                duration: cost.scheduling,
            },
            PhaseCost {
                phase: RecoveryPhase::PodBuild,
                duration: cost.pod_build,
            },
            PhaseCost {
                phase: RecoveryPhase::CheckpointLoad,
                duration: cost.checkpoint_load,
            },
            PhaseCost {
                phase: RecoveryPhase::Recompute,
                duration: cost.recompute,
            },
        ]
    }
}

/// A structured postmortem for one closed incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Postmortem {
    /// Incident sequence number.
    pub seq: u64,
    /// One-line headline, e.g. `"SEV-3 CUDA Error resolved by Stop-time eviction"`.
    pub title: String,
    /// Assigned severity.
    pub severity: Severity,
    /// The `REC-*` classification code.
    pub rec_code: &'static str,
    /// Symptom.
    pub kind: FaultKind,
    /// Incident category.
    pub category: FaultCategory,
    /// Ground-truth root cause (only the simulator knows it).
    pub root_cause: RootCause,
    /// The root cause the control plane concluded from its evidence — what a
    /// production postmortem would actually record.
    pub concluded_cause: RootCause,
    /// Mechanism that resolved the incident.
    pub mechanism: ResolutionMechanism,
    /// When the incident opened.
    pub opened_at: SimTime,
    /// When the incident closed.
    pub closed_at: SimTime,
    /// Pre-incident background context from the flight recorder.
    pub context: Vec<RecorderEntry>,
    /// The incident window: every event recorded while the incident was
    /// active, in order.
    pub timeline: Vec<RecorderEntry>,
    /// Unproductive time broken down by recovery phase; sums to
    /// [`Postmortem::total_cost`].
    pub phase_costs: Vec<PhaseCost>,
    /// Total unproductive time.
    pub total_cost: SimDuration,
    /// Machines evicted while resolving the incident.
    pub evicted: Vec<MachineId>,
    /// Whether healthy machines were knowingly evicted.
    pub over_evicted: bool,
    /// The optimizer step training resumed from.
    pub resumed_step: u64,
    /// Recommended follow-ups, rendered from the classification's
    /// escalations.
    pub follow_ups: Vec<String>,
}

impl Postmortem {
    /// Generates the postmortem for a stored incident dossier.
    pub fn for_dossier(dossier: &IncidentDossier) -> Postmortem {
        let title = format!(
            "{} {} resolved by {}",
            dossier.classification.severity.label(),
            dossier.kind.symptom_name(),
            dossier.mechanism.display_name()
        );
        let mut follow_ups: Vec<String> = dossier
            .classification
            .escalations
            .iter()
            .map(|escalation| escalation.description().to_string())
            .collect();
        if !dossier.evicted.is_empty() {
            let machines: Vec<String> = dossier
                .evicted
                .iter()
                .map(|machine| machine.to_string())
                .collect();
            follow_ups.push(format!(
                "track repair & re-admission of: {}",
                machines.join(", ")
            ));
        }
        // The capture window is in insertion order; phase transitions are
        // recorded at incident close, so re-sort chronologically (stable, so
        // simultaneous events keep their causal order).
        let mut timeline = dossier.capture.window.clone();
        timeline.sort_by_key(|entry| entry.at);
        Postmortem {
            seq: dossier.seq,
            title,
            severity: dossier.classification.severity,
            rec_code: dossier.classification.rec_code,
            kind: dossier.kind,
            category: dossier.category,
            root_cause: dossier.root_cause,
            concluded_cause: dossier.concluded_cause,
            mechanism: dossier.mechanism,
            opened_at: dossier.capture.opened_at,
            closed_at: dossier.capture.closed_at,
            context: dossier.capture.context.clone(),
            timeline,
            phase_costs: PhaseCost::breakdown(&dossier.cost),
            total_cost: dossier.cost.total(),
            evicted: dossier.evicted.clone(),
            over_evicted: dossier.over_evicted,
            resumed_step: dossier.resumed_step,
            follow_ups,
        }
    }

    /// The sum of the per-phase costs; by construction equal to
    /// [`Postmortem::total_cost`].
    pub fn phase_cost_sum(&self) -> SimDuration {
        self.phase_costs.iter().map(|pc| pc.duration).sum()
    }

    /// Renders the postmortem as a plain-text document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "==== Postmortem: incident #{} ====", self.seq);
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(
            out,
            "classification: {} {} | category: {:?} | root cause: {:?}",
            self.severity.label(),
            self.rec_code,
            self.category,
            self.root_cause,
        );
        let _ = writeln!(
            out,
            "concluded cause: {:?}{}",
            self.concluded_cause,
            if self.concluded_cause == self.root_cause {
                " (matches ground truth)"
            } else {
                " (MISATTRIBUTED)"
            }
        );
        let _ = writeln!(
            out,
            "window: {} -> {} | unproductive: {}",
            self.opened_at, self.closed_at, self.total_cost
        );

        if !self.context.is_empty() {
            let _ = writeln!(
                out,
                "\n-- pre-incident context ({} entries)",
                self.context.len()
            );
            for entry in &self.context {
                let _ = writeln!(out, "  {entry}");
            }
        }

        let _ = writeln!(out, "\n-- timeline ({} events)", self.timeline.len());
        for entry in &self.timeline {
            let _ = writeln!(out, "  {entry}");
        }

        let _ = writeln!(out, "\n-- unproductive time by phase");
        for pc in &self.phase_costs {
            if !pc.duration.is_zero() {
                let _ = writeln!(out, "  {:<16} {}", pc.phase.name(), pc.duration);
            }
        }
        let _ = writeln!(out, "  {:<16} {}", "total", self.total_cost);

        if self.evicted.is_empty() {
            let _ = writeln!(out, "\n-- evictions: none");
        } else {
            let machines: Vec<String> = self
                .evicted
                .iter()
                .map(|machine| machine.to_string())
                .collect();
            let _ = writeln!(
                out,
                "\n-- evictions: {}{}",
                machines.join(", "),
                if self.over_evicted {
                    " (includes over-evictions)"
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(out, "-- training resumed from step {}", self.resumed_step);

        if self.follow_ups.is_empty() {
            let _ = writeln!(out, "\n-- follow-ups: none");
        } else {
            let _ = writeln!(out, "\n-- follow-ups");
            for follow_up in &self.follow_ups {
                let _ = writeln!(out, "  * {follow_up}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{ClassificationInput, ClassificationMatrix};
    use crate::recorder::{IncidentCapture, RecorderEvent};

    fn dossier() -> IncidentDossier {
        let cost = FailoverCost {
            detection: SimDuration::from_secs(10),
            localization: SimDuration::from_secs(300),
            scheduling: SimDuration::from_secs(60),
            pod_build: SimDuration::ZERO,
            checkpoint_load: SimDuration::from_secs(30),
            recompute: SimDuration::from_secs(45),
        };
        let matrix = ClassificationMatrix::byterobust_default();
        let classification = matrix.classify(&ClassificationInput {
            category: FaultCategory::Explicit,
            root_cause: RootCause::Infrastructure,
            mechanism: ResolutionMechanism::StopTimeEviction,
            blast_radius: 1,
            over_evicted: false,
            reproducible: true,
            downtime: cost.total(),
        });
        let mut capture = IncidentCapture::empty(42, FaultKind::CudaError, SimTime::from_hours(5));
        capture.closed_at = SimTime::from_hours(5) + cost.total();
        capture.window.push(RecorderEntry {
            at: capture.opened_at,
            event: RecorderEvent::Detected {
                kind: FaultKind::CudaError,
                latency: SimDuration::from_secs(10),
            },
        });
        capture.window.push(RecorderEntry {
            at: capture.closed_at,
            event: RecorderEvent::Eviction {
                machine: MachineId(7),
                over_eviction: false,
            },
        });
        IncidentDossier {
            seq: 42,
            at: SimTime::from_hours(5),
            kind: FaultKind::CudaError,
            category: FaultCategory::Explicit,
            root_cause: RootCause::Infrastructure,
            concluded_cause: RootCause::Infrastructure,
            mechanism: ResolutionMechanism::StopTimeEviction,
            cost,
            evicted: vec![MachineId(7)],
            over_evicted: false,
            resumed_step: 1234,
            classification,
            capture,
        }
    }

    #[test]
    fn phase_costs_sum_to_failover_total() {
        let d = dossier();
        let postmortem = Postmortem::for_dossier(&d);
        assert_eq!(postmortem.phase_cost_sum(), d.cost.total());
        assert_eq!(postmortem.total_cost, d.cost.total());
        // Every phase appears exactly once, in chronological order.
        let phases: Vec<RecoveryPhase> = postmortem.phase_costs.iter().map(|pc| pc.phase).collect();
        assert_eq!(phases, RecoveryPhase::ALL.to_vec());
    }

    #[test]
    fn render_contains_the_essentials() {
        let postmortem = Postmortem::for_dossier(&dossier());
        let text = postmortem.render();
        assert!(text.contains("incident #42"));
        assert!(text.contains("SEV-3"));
        assert!(text.contains("REC-EV2"));
        assert!(text.contains("CUDA Error"));
        assert!(text.contains("detected CUDA Error"));
        assert!(text.contains("evicted machine-7"));
        assert!(text.contains("resumed from step 1234"));
        assert!(text.contains("hardware repair ticket"));
    }

    #[test]
    fn follow_ups_track_evicted_machines() {
        let postmortem = Postmortem::for_dossier(&dossier());
        assert!(postmortem
            .follow_ups
            .iter()
            .any(|f| f.contains("repair & re-admission") && f.contains("machine-7")));
    }
}
