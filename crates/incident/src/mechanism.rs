//! The resolution-mechanism taxonomy (Table 4).
//!
//! This type historically lived in `byterobust-core`'s `ft` module; it moved
//! here so the classification matrix can key on it without a dependency
//! cycle. The core crate re-exports it from its old path.

use serde::{Deserialize, Serialize};

/// Which mechanism finally resolved an incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResolutionMechanism {
    /// Real-time checks identified the machine; evicted immediately
    /// (AutoFT-ER fast path).
    ImmediateEviction,
    /// Stop-time checks identified the machines; evicted (AutoFT-ER).
    StopTimeEviction,
    /// All checks passed; a plain restart cleared the transient fault.
    Reattempt,
    /// Reverting recent user code cleared the fault (Rollback).
    Rollback,
    /// Dual-phase replay isolated the machines; evicted.
    DualPhaseReplay,
    /// The Runtime Analyzer's aggregation analysis over-evicted a parallel
    /// group (Analyzer-ER).
    AnalyzerEviction,
    /// A manual code/data adjustment handled by the in-place hot update
    /// (AutoFT-HU).
    HotUpdate,
}

impl ResolutionMechanism {
    /// The row label used in Table 4.
    pub fn table4_label(self) -> &'static str {
        match self {
            ResolutionMechanism::ImmediateEviction
            | ResolutionMechanism::StopTimeEviction
            | ResolutionMechanism::DualPhaseReplay
            | ResolutionMechanism::Reattempt => "AutoFT-ER",
            ResolutionMechanism::HotUpdate => "AutoFT-HU",
            ResolutionMechanism::AnalyzerEviction => "Analyzer-ER",
            ResolutionMechanism::Rollback => "Rollback",
        }
    }

    /// Human-readable mechanism name (the §4.2 "lesson" rows).
    pub fn display_name(self) -> &'static str {
        match self {
            ResolutionMechanism::ImmediateEviction => "Real-time eviction",
            ResolutionMechanism::StopTimeEviction => "Stop-time eviction",
            ResolutionMechanism::Reattempt => "Reattempt",
            ResolutionMechanism::Rollback => "Rollback",
            ResolutionMechanism::DualPhaseReplay => "Dual-phase replay",
            ResolutionMechanism::AnalyzerEviction => "Analyzer eviction",
            ResolutionMechanism::HotUpdate => "Hot update",
        }
    }

    /// Whether resolving through this mechanism evicted machines.
    pub fn evicts_machines(self) -> bool {
        matches!(
            self,
            ResolutionMechanism::ImmediateEviction
                | ResolutionMechanism::StopTimeEviction
                | ResolutionMechanism::DualPhaseReplay
                | ResolutionMechanism::AnalyzerEviction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_labels() {
        assert_eq!(
            ResolutionMechanism::ImmediateEviction.table4_label(),
            "AutoFT-ER"
        );
        assert_eq!(ResolutionMechanism::HotUpdate.table4_label(), "AutoFT-HU");
        assert_eq!(
            ResolutionMechanism::AnalyzerEviction.table4_label(),
            "Analyzer-ER"
        );
        assert_eq!(ResolutionMechanism::Rollback.table4_label(), "Rollback");
    }

    #[test]
    fn eviction_mechanisms_are_flagged() {
        assert!(ResolutionMechanism::DualPhaseReplay.evicts_machines());
        assert!(!ResolutionMechanism::Reattempt.evicts_machines());
        assert!(!ResolutionMechanism::HotUpdate.evicts_machines());
    }
}
