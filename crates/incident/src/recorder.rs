//! The flight recorder: a bounded ring buffer tapping the control plane.
//!
//! Modelled on aviation flight recorders (and on the flight-recorder
//! incident-response pattern): the recorder runs *continuously*, keeping the
//! last [`FlightRecorderConfig::capacity`] entries of background telemetry in
//! a ring. When the controller opens an incident, the recorder snapshots the
//! most recent background entries as pre-incident *context* and starts an
//! incident *window*; every monitor verdict, diagnoser decision, analyzer
//! decision, replay verdict, eviction, and recovery-phase transition recorded
//! while the incident is active lands in that window. Closing the incident
//! freezes context + window into an immutable [`IncidentCapture`] that the
//! postmortem generator and the incident store consume.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use byterobust_agent::DiagnosisConclusion;
use byterobust_cluster::{FaultKind, MachineId};
use byterobust_sim::{SimDuration, SimTime};
use byterobust_telemetry::{EventKind, SystemEvent};

/// The recovery phases an incident's unproductive time is charged to, in
/// chronological order (the Fig. 3 decomposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RecoveryPhase {
    /// Fault occurred → system noticed it.
    Detection,
    /// Locating / isolating the faulty machines.
    Localization,
    /// Scheduling replacement machines or the in-place restart.
    Scheduling,
    /// Rebuilding pod environments.
    PodBuild,
    /// Loading the checkpoint.
    CheckpointLoad,
    /// Recomputing the steps lost since the restored checkpoint.
    Recompute,
}

impl RecoveryPhase {
    /// All phases in chronological order.
    pub const ALL: [RecoveryPhase; 6] = [
        RecoveryPhase::Detection,
        RecoveryPhase::Localization,
        RecoveryPhase::Scheduling,
        RecoveryPhase::PodBuild,
        RecoveryPhase::CheckpointLoad,
        RecoveryPhase::Recompute,
    ];

    /// Human-readable phase name.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPhase::Detection => "detection",
            RecoveryPhase::Localization => "localization",
            RecoveryPhase::Scheduling => "scheduling",
            RecoveryPhase::PodBuild => "pod build",
            RecoveryPhase::CheckpointLoad => "checkpoint load",
            RecoveryPhase::Recompute => "recompute",
        }
    }
}

/// Which subsystem produced a recorded event; used to label evidence in the
/// postmortem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvidenceSource {
    /// The telemetry substrate (dmesg/DCGM/switch-telemetry analogues).
    Telemetry,
    /// The monitor's real-time inspections.
    Monitor,
    /// The stop-time diagnoser.
    Diagnoser,
    /// The Runtime Analyzer's aggregation analysis.
    Analyzer,
    /// Dual-phase replay.
    Replay,
    /// The controller itself (phase transitions, evictions, recovery actions).
    Controller,
}

/// One event captured by the flight recorder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RecorderEvent {
    /// A raw system event surfaced by the telemetry tap.
    Telemetry(SystemEvent),
    /// The monitor noticed the incident (detection latency attached).
    Detected {
        /// Observable symptom that fired.
        kind: FaultKind,
        /// Time from the fault occurring to the system noticing.
        latency: SimDuration,
    },
    /// A real-time inspection implicated a machine.
    MonitorVerdict {
        /// Machine implicated.
        machine: MachineId,
        /// Health issue observed, rendered for the record.
        issue: String,
    },
    /// The stop-time diagnoser reached a conclusion.
    DiagnosisDecision {
        /// The conclusion of the hierarchical test suites.
        conclusion: DiagnosisConclusion,
        /// Machines implicated (empty unless faulty machines were found).
        suspects: Vec<MachineId>,
        /// How long the stop-time checks took.
        duration: SimDuration,
    },
    /// The Runtime Analyzer's aggregation analysis produced a decision.
    AnalyzerDecision {
        /// Machines in the over-evicted parallel group.
        machines: Vec<MachineId>,
        /// The shared parallel-group kind, rendered (e.g. "PP"), if any.
        shared_group: Option<String>,
        /// Number of outlier ranks the aggregation flagged.
        outlier_ranks: usize,
        /// Whether the decision knowingly over-evicts healthy machines.
        over_evicts: bool,
    },
    /// Dual-phase replay isolated a suspect set.
    ReplayVerdict {
        /// The suspect machines replay converged on.
        suspects: Vec<MachineId>,
        /// How long the replay took.
        duration: SimDuration,
    },
    /// A recovery phase completed, charging `duration` to the incident.
    PhaseTransition {
        /// Which phase.
        phase: RecoveryPhase,
        /// Time charged to this phase alone; the per-phase durations of one
        /// incident sum to its `FailoverCost::total()`.
        duration: SimDuration,
    },
    /// A machine was evicted and blacklisted.
    Eviction {
        /// The machine.
        machine: MachineId,
        /// Whether this eviction was an over-eviction of a healthy machine.
        over_eviction: bool,
    },
    /// User code was rolled back to an earlier version.
    Rollback {
        /// The code version rolled back to.
        to_version: u32,
    },
    /// A pending hot update was merged into the recovery.
    HotUpdateApplied {
        /// The code version now running.
        version: u32,
    },
    /// Training resumed.
    Resumed {
        /// Optimizer step training resumed from.
        step: u64,
    },
    /// The warm-standby pool could not cover this incident's evictions: part
    /// of the delay is capacity starvation, not failure handling. Records how
    /// the gap was closed (broker preemption / cross-job migration) and what
    /// remained for the slow reschedule path.
    CapacityStarvation {
        /// Machines covered by preempting another job's replenishment slot.
        preempted: usize,
        /// Machines covered by migrating a spare machine from another job.
        migrated: usize,
        /// Machines nothing could cover (rescheduled from the free pool).
        shortfall: usize,
    },
}

impl RecorderEvent {
    /// The subsystem that produced this event.
    pub fn source(&self) -> EvidenceSource {
        match self {
            RecorderEvent::Telemetry(_) => EvidenceSource::Telemetry,
            RecorderEvent::Detected { .. } | RecorderEvent::MonitorVerdict { .. } => {
                EvidenceSource::Monitor
            }
            RecorderEvent::DiagnosisDecision { .. } => EvidenceSource::Diagnoser,
            RecorderEvent::AnalyzerDecision { .. } => EvidenceSource::Analyzer,
            RecorderEvent::ReplayVerdict { .. } => EvidenceSource::Replay,
            RecorderEvent::PhaseTransition { .. }
            | RecorderEvent::Eviction { .. }
            | RecorderEvent::Rollback { .. }
            | RecorderEvent::HotUpdateApplied { .. }
            | RecorderEvent::Resumed { .. }
            | RecorderEvent::CapacityStarvation { .. } => EvidenceSource::Controller,
        }
    }

    /// Machines this event mentions (used by the store's per-machine query).
    pub fn machines(&self) -> Vec<MachineId> {
        self.machines_ref().to_vec()
    }

    /// The machines an event names, as a borrow of the event's own storage —
    /// no allocation, for per-incident hot paths.
    pub fn machines_ref(&self) -> &[MachineId] {
        match self {
            RecorderEvent::Telemetry(event) => std::slice::from_ref(&event.machine),
            RecorderEvent::MonitorVerdict { machine, .. }
            | RecorderEvent::Eviction { machine, .. } => std::slice::from_ref(machine),
            RecorderEvent::DiagnosisDecision { suspects, .. }
            | RecorderEvent::ReplayVerdict { suspects, .. } => suspects,
            RecorderEvent::AnalyzerDecision { machines, .. } => machines,
            _ => &[],
        }
    }
}

impl fmt::Display for RecorderEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecorderEvent::Telemetry(event) => {
                write!(f, "telemetry: {:?} on {}", event.kind, event.machine)
            }
            RecorderEvent::Detected { kind, latency } => {
                write!(f, "detected {} after {latency}", kind.symptom_name())
            }
            RecorderEvent::MonitorVerdict { machine, issue } => {
                write!(f, "real-time inspection flagged {machine}: {issue}")
            }
            RecorderEvent::DiagnosisDecision {
                conclusion,
                suspects,
                duration,
            } => {
                write!(
                    f,
                    "stop-time diagnosis: {conclusion:?} {suspects:?} in {duration}"
                )
            }
            RecorderEvent::AnalyzerDecision {
                machines,
                shared_group,
                outlier_ranks,
                over_evicts,
            } => {
                write!(
                    f,
                    "aggregation analysis: {outlier_ranks} outlier rank(s) -> {} group {machines:?}{}",
                    shared_group.as_deref().unwrap_or("?"),
                    if *over_evicts { " (over-eviction)" } else { "" }
                )
            }
            RecorderEvent::ReplayVerdict { suspects, duration } => {
                write!(f, "dual-phase replay isolated {suspects:?} in {duration}")
            }
            RecorderEvent::PhaseTransition { phase, duration } => {
                write!(f, "phase {} took {duration}", phase.name())
            }
            RecorderEvent::Eviction {
                machine,
                over_eviction,
            } => {
                write!(
                    f,
                    "evicted {machine}{}",
                    if *over_eviction {
                        " (over-eviction)"
                    } else {
                        ""
                    }
                )
            }
            RecorderEvent::Rollback { to_version } => {
                write!(f, "rolled user code back to v{to_version}")
            }
            RecorderEvent::HotUpdateApplied { version } => {
                write!(f, "merged pending hot update -> v{version}")
            }
            RecorderEvent::Resumed { step } => write!(f, "training resumed from step {step}"),
            RecorderEvent::CapacityStarvation {
                preempted,
                migrated,
                shortfall,
            } => {
                write!(
                    f,
                    "standby pool starved: {preempted} covered by preemption, {migrated} by \
                     migration, {shortfall} rescheduled from the free pool"
                )
            }
        }
    }
}

/// A timestamped recorder entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecorderEntry {
    /// When the event happened (simulated time).
    pub at: SimTime,
    /// What happened.
    pub event: RecorderEvent,
}

impl fmt::Display for RecorderEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.at, self.event)
    }
}

/// The frozen capture of one incident: pre-incident context plus the incident
/// window, immutable once the incident closes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentCapture {
    /// Incident sequence number (matches the fault injector's `seq`).
    pub seq: u64,
    /// Symptom the incident opened with.
    pub kind: FaultKind,
    /// When the incident opened.
    pub opened_at: SimTime,
    /// When the incident closed.
    pub closed_at: SimTime,
    /// Background entries captured *before* the incident opened (most recent
    /// last), snapshotted at open time.
    pub context: Vec<RecorderEntry>,
    /// Every entry recorded while the incident was active, in order.
    pub window: Vec<RecorderEntry>,
}

impl IncidentCapture {
    /// Whether this incident's recovery was delayed by capacity starvation
    /// (the warm-standby pool could not cover its evictions) rather than by
    /// failure handling alone.
    pub fn capacity_starved(&self) -> bool {
        self.window
            .iter()
            .any(|entry| matches!(entry.event, RecorderEvent::CapacityStarvation { .. }))
    }

    /// An empty capture, for synthesizing dossiers in tests and tools.
    pub fn empty(seq: u64, kind: FaultKind, at: SimTime) -> Self {
        IncidentCapture {
            seq,
            kind,
            opened_at: at,
            closed_at: at,
            context: Vec::new(),
            window: Vec::new(),
        }
    }

    /// Wall-clock span of the incident window.
    pub fn span(&self) -> SimDuration {
        self.closed_at.saturating_since(self.opened_at)
    }

    /// All machines mentioned in the capture: the incident window, plus the
    /// context entries recorded at or after the incident opened. The latter
    /// matters because the telemetry tap fires at fault time, just before the
    /// window opens — for a transient fault resolved by reattempt that
    /// signature is the *only* place the culprit machine is named. Older
    /// context entries are ring carryover from previous incidents and are
    /// deliberately excluded.
    pub fn machines_mentioned(&self) -> Vec<MachineId> {
        let mut machines = Vec::new();
        self.machines_mentioned_into(&mut machines);
        machines.sort();
        machines.dedup();
        machines
    }

    /// Appends every mentioned machine to `out` without allocating (callers
    /// on per-incident hot paths reuse one scratch buffer and sort/dedup
    /// themselves). Order and duplicates follow the capture's entries.
    pub fn machines_mentioned_into(&self, out: &mut Vec<MachineId>) {
        out.extend(
            self.context
                .iter()
                .filter(|entry| entry.at >= self.opened_at)
                .chain(self.window.iter())
                .flat_map(|entry| entry.event.machines_ref())
                .copied(),
        );
    }

    /// Entries produced by a given subsystem.
    pub fn evidence_from(&self, source: EvidenceSource) -> Vec<&RecorderEntry> {
        self.window
            .iter()
            .filter(|entry| entry.event.source() == source)
            .collect()
    }
}

/// Flight-recorder sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightRecorderConfig {
    /// Maximum background entries kept in the ring.
    pub capacity: usize,
    /// How many of the most recent background entries are snapshotted as
    /// pre-incident context when an incident opens.
    pub context_entries: usize,
    /// Hard cap on entries captured inside one incident window (a runaway
    /// incident must not grow the record unboundedly).
    pub window_capacity: usize,
}

impl Default for FlightRecorderConfig {
    fn default() -> Self {
        FlightRecorderConfig {
            capacity: 256,
            context_entries: 16,
            window_capacity: 512,
        }
    }
}

/// The currently-open incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ActiveIncident {
    seq: u64,
    kind: FaultKind,
    opened_at: SimTime,
    context: Vec<RecorderEntry>,
    window: Vec<RecorderEntry>,
    dropped: usize,
}

/// The flight recorder. One lives inside each `RobustController`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightRecorder {
    config: FlightRecorderConfig,
    ring: VecDeque<RecorderEntry>,
    active: Option<ActiveIncident>,
    /// Total entries ever dropped from incident windows at capacity.
    dropped_total: usize,
}

impl FlightRecorder {
    /// Creates a recorder with the given sizing.
    pub fn new(config: FlightRecorderConfig) -> Self {
        FlightRecorder {
            config,
            ring: VecDeque::with_capacity(config.capacity.min(1024)),
            active: None,
            dropped_total: 0,
        }
    }

    /// The sizing in effect.
    pub fn config(&self) -> FlightRecorderConfig {
        self.config
    }

    /// Whether an incident window is currently open.
    pub fn is_recording_incident(&self) -> bool {
        self.active.is_some()
    }

    /// Number of background entries currently in the ring.
    pub fn background_len(&self) -> usize {
        self.ring.len()
    }

    /// Total entries dropped from incident windows because they hit
    /// `window_capacity`.
    pub fn dropped_total(&self) -> usize {
        self.dropped_total
    }

    /// Records an event. Outside an incident it lands in the background ring
    /// (evicting the oldest entry at capacity); inside an incident it lands
    /// in the open window (dropped, and counted, once the window is full).
    pub fn record(&mut self, at: SimTime, event: RecorderEvent) {
        let entry = RecorderEntry { at, event };
        match &mut self.active {
            Some(active) => {
                if active.window.len() < self.config.window_capacity {
                    active.window.push(entry);
                } else {
                    active.dropped += 1;
                    self.dropped_total += 1;
                }
            }
            None => {
                if self.config.capacity == 0 {
                    return;
                }
                if self.ring.len() == self.config.capacity {
                    self.ring.pop_front();
                }
                self.ring.push_back(entry);
            }
        }
    }

    /// Opens an incident: snapshots the most recent background entries as
    /// context and starts routing subsequent events into the incident window.
    /// Returns `false` (and changes nothing) if an incident is already open.
    pub fn open_incident(&mut self, seq: u64, kind: FaultKind, at: SimTime) -> bool {
        if self.active.is_some() {
            return false;
        }
        let skip = self.ring.len().saturating_sub(self.config.context_entries);
        let context: Vec<RecorderEntry> = self.ring.iter().skip(skip).cloned().collect();
        self.active = Some(ActiveIncident {
            seq,
            kind,
            opened_at: at,
            context,
            window: Vec::new(),
            dropped: 0,
        });
        true
    }

    /// Machines named by the open incident's *context* entries recorded at or
    /// after `since` — i.e. the fault-time telemetry signatures that landed in
    /// the background ring just before the incident opened. This is the
    /// recorded-data view of "which machines did the symptom surface on",
    /// available to the controller without consulting injector ground truth.
    /// Returns an empty list when no incident is open. Sorted, deduplicated.
    pub fn context_machines_since(&self, since: SimTime) -> Vec<MachineId> {
        let Some(active) = &self.active else {
            return Vec::new();
        };
        let mut machines: Vec<MachineId> = active
            .context
            .iter()
            .filter(|entry| entry.at >= since)
            .flat_map(|entry| entry.event.machines())
            .collect();
        machines.sort();
        machines.dedup();
        machines
    }

    /// Closes the open incident, freezing its capture. Returns `None` if no
    /// incident is open.
    pub fn close_incident(&mut self, at: SimTime) -> Option<IncidentCapture> {
        let active = self.active.take()?;
        Some(IncidentCapture {
            seq: active.seq,
            kind: active.kind,
            opened_at: active.opened_at,
            closed_at: at,
            context: active.context,
            window: active.window,
        })
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FlightRecorderConfig::default())
    }
}

/// The telemetry signature an incident symptom leaves behind, if any: the
/// system-event kind the inspection infrastructure would surface for it.
/// Implicit failures (hangs, MFU decline, NaN) and manual restarts produce no
/// explicit system event — which is exactly why they need the analyzer path.
pub fn telemetry_signature(kind: FaultKind) -> Option<EventKind> {
    use FaultKind::*;
    match kind {
        CudaError => Some(EventKind::CudaRuntimeError),
        GpuMemoryError => Some(EventKind::XidError),
        GpuUnavailable => Some(EventKind::DcgmQueryFailure),
        InfinibandError => Some(EventKind::NicDown),
        OsKernelPanic => Some(EventKind::KernelPanic),
        CpuOom => Some(EventKind::OomKill),
        CpuOverload => Some(EventKind::OomKill),
        FilesystemMount => Some(EventKind::FilesystemMountLost),
        HdfsError => Some(EventKind::RemoteStorageError),
        ContainerError => Some(EventKind::ContainerFailure),
        ExternalServiceError => Some(EventKind::RemoteStorageError),
        InsufficientDiskSpace | DiskFault => None,
        JobHang | MfuDecline | NanValue | CodeDataAdjustment => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn telemetry_event(secs: u64, machine: u32) -> RecorderEvent {
        RecorderEvent::Telemetry(SystemEvent::new(
            t(secs),
            EventKind::XidError,
            MachineId(machine),
        ))
    }

    #[test]
    fn background_ring_is_bounded() {
        let mut recorder = FlightRecorder::new(FlightRecorderConfig {
            capacity: 4,
            context_entries: 2,
            window_capacity: 8,
        });
        for i in 0..10 {
            recorder.record(t(i), telemetry_event(i, i as u32));
        }
        assert_eq!(recorder.background_len(), 4);
    }

    #[test]
    fn open_snapshots_context_and_close_freezes_window() {
        let mut recorder = FlightRecorder::new(FlightRecorderConfig {
            capacity: 8,
            context_entries: 2,
            window_capacity: 8,
        });
        for i in 0..5 {
            recorder.record(t(i), telemetry_event(i, i as u32));
        }
        assert!(recorder.open_incident(1, FaultKind::CudaError, t(10)));
        assert!(recorder.is_recording_incident());
        recorder.record(
            t(10),
            RecorderEvent::Detected {
                kind: FaultKind::CudaError,
                latency: SimDuration::from_secs(5),
            },
        );
        recorder.record(
            t(11),
            RecorderEvent::Eviction {
                machine: MachineId(3),
                over_eviction: false,
            },
        );
        let capture = recorder.close_incident(t(12)).expect("incident was open");
        assert!(!recorder.is_recording_incident());
        // Context is the *last two* background entries.
        assert_eq!(capture.context.len(), 2);
        assert_eq!(capture.context[1].at, t(4));
        // Window holds exactly the events recorded while open.
        assert_eq!(capture.window.len(), 2);
        assert_eq!(capture.span(), SimDuration::from_secs(2));
        // Context telemetry (machines 3 and 4, recorded at t=3/t=4) predates
        // the open at t=10 — ring carryover from before this incident — so
        // only the window's eviction of machine 3 counts as a mention.
        assert_eq!(capture.machines_mentioned(), vec![MachineId(3)]);
        // The capture is frozen: further records do not touch it.
        recorder.record(t(13), telemetry_event(13, 9));
        assert_eq!(capture.window.len(), 2);
    }

    #[test]
    fn fault_time_telemetry_in_context_counts_as_a_mention() {
        // The lifecycle's telemetry tap fires at fault time, just before the
        // controller opens the incident, so the signature lands in the
        // background ring and reaches the capture via the context snapshot.
        // For a transient fault resolved by reattempt (no evictions, no
        // window event naming the machine) it is the only mention of the
        // culprit — it must survive into machines_mentioned().
        let mut recorder = FlightRecorder::default();
        recorder.record(t(5), telemetry_event(5, 1)); // stale carryover
        recorder.record(t(10), telemetry_event(10, 2)); // fault-time signature
        recorder.open_incident(1, FaultKind::InfinibandError, t(10));
        recorder.record(
            t(10),
            RecorderEvent::Detected {
                kind: FaultKind::InfinibandError,
                latency: SimDuration::from_secs(3),
            },
        );
        let capture = recorder.close_incident(t(11)).unwrap();
        assert_eq!(capture.machines_mentioned(), vec![MachineId(2)]);
    }

    #[test]
    fn double_open_is_rejected() {
        let mut recorder = FlightRecorder::default();
        assert!(recorder.open_incident(1, FaultKind::JobHang, t(1)));
        assert!(!recorder.open_incident(2, FaultKind::CudaError, t(2)));
        let capture = recorder.close_incident(t(3)).unwrap();
        assert_eq!(capture.seq, 1);
        assert!(recorder.close_incident(t(4)).is_none());
    }

    #[test]
    fn incident_window_is_bounded_and_drops_are_counted() {
        let mut recorder = FlightRecorder::new(FlightRecorderConfig {
            capacity: 4,
            context_entries: 0,
            window_capacity: 3,
        });
        recorder.open_incident(7, FaultKind::JobHang, t(0));
        for i in 0..10 {
            recorder.record(t(i), telemetry_event(i, 0));
        }
        let capture = recorder.close_incident(t(10)).unwrap();
        assert_eq!(capture.window.len(), 3);
        assert_eq!(recorder.dropped_total(), 7);
    }

    #[test]
    fn evidence_is_filtered_by_source() {
        let mut recorder = FlightRecorder::default();
        recorder.open_incident(1, FaultKind::NanValue, t(0));
        recorder.record(t(0), telemetry_event(0, 1));
        recorder.record(
            t(1),
            RecorderEvent::DiagnosisDecision {
                conclusion: DiagnosisConclusion::FaultyMachines,
                suspects: vec![MachineId(1)],
                duration: SimDuration::from_mins(8),
            },
        );
        let capture = recorder.close_incident(t(2)).unwrap();
        assert_eq!(capture.evidence_from(EvidenceSource::Diagnoser).len(), 1);
        assert_eq!(capture.evidence_from(EvidenceSource::Telemetry).len(), 1);
        assert_eq!(capture.evidence_from(EvidenceSource::Replay).len(), 0);
    }

    #[test]
    fn explicit_symptoms_have_telemetry_signatures_implicit_do_not() {
        assert_eq!(
            telemetry_signature(FaultKind::CudaError),
            Some(EventKind::CudaRuntimeError)
        );
        assert_eq!(
            telemetry_signature(FaultKind::OsKernelPanic),
            Some(EventKind::KernelPanic)
        );
        assert_eq!(telemetry_signature(FaultKind::JobHang), None);
        assert_eq!(telemetry_signature(FaultKind::MfuDecline), None);
        assert_eq!(telemetry_signature(FaultKind::CodeDataAdjustment), None);
    }
}
