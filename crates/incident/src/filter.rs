//! The shared filter core behind every incident query surface.
//!
//! [`IncidentStore::query`](crate::IncidentStore::query), the fleet
//! warehouse's indexed path and its `linear_scan` oracle, and the epoch
//! snapshots of the resident query plane all answer the same question — which
//! dossiers match an [`IncidentQuery`] — and historically each grew its own
//! copy of the predicate plumbing. This module is the single home for that
//! logic:
//!
//! * [`matches()`] — the conjunctive predicate itself (every `Some` field must
//!   hold; `None` fields match everything).
//! * [`filter`] — the predicate applied over a dossier slice, preserving
//!   order.
//! * [`implicated_machines_into`] — the "involves" machine set (evicted plus
//!   capture-mentioned, sorted and deduped), exactly the semantics of
//!   [`IncidentQuery::machine`] and of the warehouse's machine index.
//! * [`canonical_key`] — the fleet-wide canonical result ordering
//!   `(start time, job label, seq)` every multi-shard query surface sorts by.
//!
//! Keeping these here means an index can only ever disagree with a scan
//! through a bug in the index, never through predicate drift.

use byterobust_cluster::MachineId;
use byterobust_sim::SimTime;

use crate::store::{IncidentDossier, IncidentQuery};

/// Whether a dossier satisfies every bound field of the query. This is the
/// one predicate all query surfaces share; `IncidentQuery::matches` is a
/// method-syntax wrapper over it.
pub fn matches(query: &IncidentQuery, dossier: &IncidentDossier) -> bool {
    if let Some(category) = query.category {
        if dossier.category != category {
            return false;
        }
    }
    if let Some(kind) = query.kind {
        if dossier.kind != kind {
            return false;
        }
    }
    if let Some(floor) = query.min_severity {
        if !dossier.classification.severity.is_at_least(floor) {
            return false;
        }
    }
    if let Some((from, to)) = query.window {
        if dossier.at < from || dossier.at >= to {
            return false;
        }
    }
    if let Some(machine) = query.machine {
        if !dossier.involves_machine(machine) {
            return false;
        }
    }
    if let Some(mechanism) = query.mechanism {
        if dossier.mechanism != mechanism {
            return false;
        }
    }
    true
}

/// The predicate applied over a dossier slice, preserving the slice's order.
pub fn filter<'a>(
    dossiers: &'a [std::sync::Arc<IncidentDossier>],
    query: &IncidentQuery,
) -> Vec<&'a IncidentDossier> {
    dossiers
        .iter()
        .map(std::sync::Arc::as_ref)
        .filter(|dossier| matches(query, dossier))
        .collect()
}

/// Collects the machines a dossier implicates — evicted machines plus
/// machines mentioned in the capture evidence — into `out`, sorted and
/// deduplicated. `out` is cleared first, so a scratch buffer can be reused
/// across calls. These are exactly the semantics of
/// [`IncidentDossier::involves_machine`] and of the warehouse machine index.
pub fn implicated_machines_into(dossier: &IncidentDossier, out: &mut Vec<MachineId>) {
    out.clear();
    out.extend_from_slice(&dossier.evicted);
    dossier.capture.machines_mentioned_into(out);
    out.sort_unstable();
    out.dedup();
}

/// The canonical fleet-wide result ordering: `(start time, job label, seq)`.
/// Every multi-shard query surface — indexed, snapshot, or brute-force —
/// returns hits sorted by this key, which is what makes results independent
/// of shard insertion order.
pub fn canonical_key<'a>(job: &'a str, dossier: &IncidentDossier) -> (SimTime, &'a str, u64) {
    (dossier.at, job, dossier.seq)
}
