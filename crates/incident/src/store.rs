//! The incident store: durable dossiers with a query API.
//!
//! Every incident the controller closes becomes an [`IncidentDossier`] —
//! resolution record, frozen flight-recorder capture, and classification —
//! appended to an [`IncidentStore`]. The store is the single source of truth
//! for incident aggregation: `JobReport`'s incident summaries and the bench
//! tables (Table 4's mechanism distribution, Table 1-style symptom counts)
//! are computed as store queries rather than ad-hoc recomputation over raw
//! records, and [`IncidentQuery`] supports filtering by category, symptom,
//! severity floor, time window, machine, and mechanism.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use byterobust_cluster::{FaultCategory, FaultKind, MachineId, RootCause};
use byterobust_recovery::FailoverCost;
use byterobust_sim::{SimDuration, SimTime};

use crate::classify::{Classification, Escalation, Severity};
use crate::mechanism::ResolutionMechanism;
use crate::postmortem::Postmortem;
use crate::recorder::{IncidentCapture, RecorderEvent};

/// The Table 4 column label for an incident category.
pub fn category_label(category: FaultCategory) -> &'static str {
    match category {
        FaultCategory::Explicit => "Explicit",
        FaultCategory::Implicit => "Implicit",
        FaultCategory::ManualRestart => "Manual Restart",
    }
}

/// Everything the system durably knows about one closed incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentDossier {
    /// Incident sequence number (the injector's `seq`).
    pub seq: u64,
    /// When the incident began.
    pub at: SimTime,
    /// Symptom.
    pub kind: FaultKind,
    /// Incident category.
    pub category: FaultCategory,
    /// Ground-truth root cause.
    pub root_cause: RootCause,
    /// The root cause the control plane itself *concluded* from its evidence
    /// (diagnoser verdicts, analyzer decisions, replay outcomes) — what a
    /// production postmortem would record. Comparing it against the
    /// simulator's `root_cause` ground truth is how attribution accuracy is
    /// scored (the §9 false-positive/negative discussion).
    pub concluded_cause: RootCause,
    /// Mechanism that resolved it.
    pub mechanism: ResolutionMechanism,
    /// Unproductive-time breakdown.
    pub cost: FailoverCost,
    /// Machines evicted while resolving it.
    pub evicted: Vec<MachineId>,
    /// Whether any eviction was an over-eviction.
    pub over_evicted: bool,
    /// The step training resumed from.
    pub resumed_step: u64,
    /// Severity classification.
    pub classification: Classification,
    /// The frozen flight-recorder capture.
    pub capture: IncidentCapture,
}

impl IncidentDossier {
    /// The "resolution time" Table 6 measures: from failure localization to
    /// successful restart (scheduling + pod rebuild + checkpoint load).
    pub fn resolution_time(&self) -> SimDuration {
        self.cost.scheduling + self.cost.pod_build + self.cost.checkpoint_load
    }

    /// Whether this incident touched the given machine — evicted it, or
    /// mentioned it anywhere in the captured evidence.
    pub fn involves_machine(&self, machine: MachineId) -> bool {
        self.evicted.contains(&machine) || self.capture.machines_mentioned().contains(&machine)
    }
}

/// A conjunctive filter over the store; `None` fields match everything.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IncidentQuery {
    /// Match this incident category.
    pub category: Option<FaultCategory>,
    /// Match this symptom.
    pub kind: Option<FaultKind>,
    /// Match incidents at least this severe.
    pub min_severity: Option<Severity>,
    /// Match incidents whose start time falls in `[window.0, window.1)`.
    pub window: Option<(SimTime, SimTime)>,
    /// Match incidents involving this machine (evicted or in evidence).
    pub machine: Option<MachineId>,
    /// Match this resolution mechanism.
    pub mechanism: Option<ResolutionMechanism>,
}

impl IncidentQuery {
    /// The match-everything query.
    pub fn any() -> Self {
        IncidentQuery::default()
    }

    /// Restricts to one category.
    pub fn category(mut self, category: FaultCategory) -> Self {
        self.category = Some(category);
        self
    }

    /// Restricts to one symptom.
    pub fn kind(mut self, kind: FaultKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Restricts to incidents at least as severe as `floor`.
    pub fn at_least(mut self, floor: Severity) -> Self {
        self.min_severity = Some(floor);
        self
    }

    /// Restricts to incidents starting in `[from, to)`.
    pub fn window(mut self, from: SimTime, to: SimTime) -> Self {
        self.window = Some((from, to));
        self
    }

    /// Restricts to incidents involving a machine.
    pub fn machine(mut self, machine: MachineId) -> Self {
        self.machine = Some(machine);
        self
    }

    /// Restricts to one resolution mechanism.
    pub fn mechanism(mut self, mechanism: ResolutionMechanism) -> Self {
        self.mechanism = Some(mechanism);
        self
    }

    /// Whether a dossier matches every set filter.
    pub fn matches(&self, dossier: &IncidentDossier) -> bool {
        crate::filter::matches(self, dossier)
    }
}

/// The durable, queryable collection of incident dossiers for one job.
///
/// Dossiers are held behind `Arc` so a dossier can live in its job's store
/// *and* in the fleet warehouse shard (and any epoch snapshot of it) as one
/// shared allocation — at mega-drill scale the second copy per incident was
/// both the dominant insert cost and a third of resident memory.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IncidentStore {
    dossiers: Vec<Arc<IncidentDossier>>,
}

impl IncidentStore {
    /// An empty store.
    pub fn new() -> Self {
        IncidentStore::default()
    }

    /// Inserts a closed incident's dossier, keeping the store sorted by
    /// sequence number. The lifecycle driver closes incidents in seq order,
    /// so the common case is an O(1) append; out-of-order inserts (synthetic
    /// dossiers, shard merges) are placed at their sorted position so
    /// [`IncidentStore::get`] can binary-search.
    pub fn insert(&mut self, dossier: IncidentDossier) {
        self.insert_shared(Arc::new(dossier));
    }

    /// [`insert`](IncidentStore::insert) for an already-shared dossier: the
    /// store keeps a reference, not a copy.
    pub fn insert_shared(&mut self, dossier: Arc<IncidentDossier>) {
        let pos = self.dossiers.partition_point(|d| d.seq <= dossier.seq);
        self.dossiers.insert(pos, dossier);
    }

    /// Number of stored incidents.
    pub fn len(&self) -> usize {
        self.dossiers.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.dossiers.is_empty()
    }

    /// All dossiers, sorted by sequence number (which is also time order for
    /// dossiers produced by a job run: the injector's seq is monotone in the
    /// fault time).
    pub fn all(&self) -> &[Arc<IncidentDossier>] {
        &self.dossiers
    }

    /// A shared handle to one stored dossier by sequence number.
    pub fn get_shared(&self, seq: u64) -> Option<Arc<IncidentDossier>> {
        self.dossiers
            .binary_search_by_key(&seq, |dossier| dossier.seq)
            .ok()
            .map(|index| Arc::clone(&self.dossiers[index]))
    }

    /// Dossiers matching a query, in time order.
    pub fn query(&self, query: &IncidentQuery) -> Vec<&IncidentDossier> {
        crate::filter::filter(&self.dossiers, query)
    }

    /// Looks up one incident by sequence number. The store is kept sorted by
    /// seq (see [`IncidentStore::insert`]), so this is a binary search, not a
    /// linear scan.
    pub fn get(&self, seq: u64) -> Option<&IncidentDossier> {
        self.dossiers
            .binary_search_by_key(&seq, |dossier| dossier.seq)
            .ok()
            .map(|index| self.dossiers[index].as_ref())
    }

    /// Generates the postmortem for one stored incident.
    pub fn postmortem(&self, seq: u64) -> Option<Postmortem> {
        self.get(seq).map(Postmortem::for_dossier)
    }

    /// Generates postmortems for every incident at least as severe as
    /// `floor`, in time order.
    pub fn postmortems_at_least(&self, floor: Severity) -> Vec<Postmortem> {
        self.query(&IncidentQuery::any().at_least(floor))
            .into_iter()
            .map(Postmortem::for_dossier)
            .collect()
    }

    /// Incident counts grouped by (Table 4 mechanism label, category label).
    pub fn resolution_counts(&self) -> BTreeMap<(&'static str, &'static str), usize> {
        let mut counts = BTreeMap::new();
        for dossier in &self.dossiers {
            *counts
                .entry((
                    dossier.mechanism.table4_label(),
                    category_label(dossier.category),
                ))
                .or_insert(0) += 1;
        }
        counts
    }

    /// Share of incidents resolved by each concrete mechanism (the §4.2
    /// "lesson" percentages).
    pub fn mechanism_shares(&self) -> BTreeMap<&'static str, f64> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for dossier in &self.dossiers {
            *counts.entry(dossier.mechanism.display_name()).or_insert(0) += 1;
        }
        let total = self.dossiers.len().max(1) as f64;
        counts
            .into_iter()
            .map(|(name, count)| (name, count as f64 / total))
            .collect()
    }

    /// Incident counts per symptom (Table 1-style distribution).
    pub fn counts_by_symptom(&self) -> BTreeMap<FaultKind, usize> {
        let mut counts = BTreeMap::new();
        for dossier in &self.dossiers {
            *counts.entry(dossier.kind).or_insert(0) += 1;
        }
        counts
    }

    /// Incident counts per severity class.
    pub fn severity_counts(&self) -> BTreeMap<Severity, usize> {
        let mut counts = BTreeMap::new();
        for dossier in &self.dossiers {
            *counts.entry(dossier.classification.severity).or_insert(0) += 1;
        }
        counts
    }

    /// Mean and max resolution time per symptom, in seconds (Table 6 "ours"
    /// columns).
    pub fn resolution_time_by_symptom(&self) -> BTreeMap<FaultKind, (f64, f64)> {
        let mut acc: BTreeMap<FaultKind, Vec<f64>> = BTreeMap::new();
        for dossier in &self.dossiers {
            acc.entry(dossier.kind)
                .or_default()
                .push(dossier.resolution_time().as_secs_f64());
        }
        acc.into_iter()
            .map(|(kind, values)| {
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                let max = values.iter().copied().fold(0.0, f64::max);
                (kind, (mean, max))
            })
            .collect()
    }

    /// Total machines evicted, and how many of those evictions were
    /// over-evictions of machines that were not true culprits (the §9
    /// false-positive discussion).
    ///
    /// The over count is exact when the capture carries per-machine
    /// [`RecorderEvent::Eviction`] events (the controller records one per
    /// eviction with its individual over-eviction flag, so a group eviction
    /// containing one real culprit counts its hostages only). For synthetic
    /// dossiers without eviction events, the incident-level `over_evicted`
    /// flag is used as an upper-bound fallback.
    pub fn eviction_stats(&self) -> (usize, usize) {
        let mut total = 0;
        let mut over = 0;
        for dossier in &self.dossiers {
            total += dossier.evicted.len();
            let per_machine: Vec<bool> = dossier
                .capture
                .window
                .iter()
                .filter_map(|entry| match entry.event {
                    RecorderEvent::Eviction { over_eviction, .. } => Some(over_eviction),
                    _ => None,
                })
                .collect();
            if per_machine.len() == dossier.evicted.len() {
                over += per_machine.iter().filter(|&&o| o).count();
            } else if dossier.over_evicted {
                over += dossier.evicted.len();
            }
        }
        (total, over)
    }

    /// Attribution scoring per incident category: how many incidents'
    /// concluded root cause matched the simulator's ground truth, as
    /// `(matching, total)` pairs. This is the groundwork for the paper's §9
    /// false-positive/false-negative table: a mismatch means the control
    /// plane resolved the incident under a wrong theory of its cause.
    pub fn attribution_stats(&self) -> BTreeMap<FaultCategory, (usize, usize)> {
        let mut stats: BTreeMap<FaultCategory, (usize, usize)> = BTreeMap::new();
        for dossier in &self.dossiers {
            let entry = stats.entry(dossier.category).or_insert((0, 0));
            if dossier.concluded_cause == dossier.root_cause {
                entry.0 += 1;
            }
            entry.1 += 1;
        }
        stats
    }

    /// Overall attribution accuracy in `[0, 1]` (1.0 for an empty store).
    pub fn attribution_accuracy(&self) -> f64 {
        if self.dossiers.is_empty() {
            return 1.0;
        }
        let matching = self
            .dossiers
            .iter()
            .filter(|dossier| dossier.concluded_cause == dossier.root_cause)
            .count();
        matching as f64 / self.dossiers.len() as f64
    }

    /// The operational backlog this job generated: every (incident, follow-up
    /// escalation) pair, in time order. This is the backlog-feedback half of
    /// the flight-recorder contract: classifications don't just label
    /// incidents, they queue work.
    pub fn escalation_backlog(&self) -> Vec<(u64, Escalation)> {
        let mut backlog = Vec::new();
        for dossier in &self.dossiers {
            for &escalation in &dossier.classification.escalations {
                backlog.push((dossier.seq, escalation));
            }
        }
        backlog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{ClassificationInput, ClassificationMatrix};

    fn dossier(
        seq: u64,
        at_hours: u64,
        kind: FaultKind,
        mechanism: ResolutionMechanism,
        evicted: Vec<MachineId>,
    ) -> IncidentDossier {
        let cost = FailoverCost {
            detection: SimDuration::from_secs(30),
            localization: SimDuration::from_secs(120),
            scheduling: SimDuration::from_secs(60),
            pod_build: SimDuration::ZERO,
            checkpoint_load: SimDuration::from_secs(20),
            recompute: SimDuration::from_secs(15),
        };
        let classification =
            ClassificationMatrix::byterobust_default().classify(&ClassificationInput {
                category: kind.category(),
                root_cause: RootCause::Infrastructure,
                mechanism,
                blast_radius: evicted.len(),
                over_evicted: false,
                reproducible: true,
                downtime: cost.total(),
            });
        IncidentDossier {
            seq,
            at: SimTime::from_hours(at_hours),
            kind,
            category: kind.category(),
            root_cause: RootCause::Infrastructure,
            concluded_cause: RootCause::Infrastructure,
            mechanism,
            cost,
            evicted,
            over_evicted: false,
            resumed_step: 100 * seq,
            classification,
            capture: IncidentCapture::empty(seq, kind, SimTime::from_hours(at_hours)),
        }
    }

    fn store() -> IncidentStore {
        let mut store = IncidentStore::new();
        store.insert(dossier(
            1,
            1,
            FaultKind::CudaError,
            ResolutionMechanism::StopTimeEviction,
            vec![MachineId(3)],
        ));
        store.insert(dossier(
            2,
            2,
            FaultKind::CudaError,
            ResolutionMechanism::Reattempt,
            vec![],
        ));
        store.insert(dossier(
            3,
            5,
            FaultKind::JobHang,
            ResolutionMechanism::AnalyzerEviction,
            vec![MachineId(4), MachineId(5)],
        ));
        store.insert(dossier(
            4,
            9,
            FaultKind::CodeDataAdjustment,
            ResolutionMechanism::HotUpdate,
            vec![],
        ));
        store
    }

    #[test]
    fn query_filters_compose() {
        let store = store();
        assert_eq!(store.query(&IncidentQuery::any()).len(), 4);
        assert_eq!(
            store
                .query(&IncidentQuery::any().kind(FaultKind::CudaError))
                .len(),
            2
        );
        assert_eq!(
            store
                .query(&IncidentQuery::any().category(FaultCategory::Implicit))
                .len(),
            1
        );
        assert_eq!(
            store
                .query(
                    &IncidentQuery::any()
                        .kind(FaultKind::CudaError)
                        .mechanism(ResolutionMechanism::Reattempt)
                )
                .len(),
            1
        );
    }

    #[test]
    fn window_query_is_half_open() {
        let store = store();
        let hits = store
            .query(&IncidentQuery::any().window(SimTime::from_hours(1), SimTime::from_hours(5)));
        // Includes hour-1 and hour-2 incidents, excludes the hour-5 one.
        assert_eq!(hits.iter().map(|d| d.seq).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn window_boundary_semantics() {
        let store = store();
        let seqs = |from: SimTime, to: SimTime| -> Vec<u64> {
            store
                .query(&IncidentQuery::any().window(from, to))
                .iter()
                .map(|d| d.seq)
                .collect()
        };
        // `from` is inclusive: a window starting exactly at an incident's
        // start time includes it.
        assert_eq!(
            seqs(SimTime::from_hours(5), SimTime::from_hours(6)),
            vec![3]
        );
        // `to` is exclusive: a window ending exactly at an incident's start
        // time excludes it.
        assert_eq!(
            seqs(SimTime::from_hours(2), SimTime::from_hours(5)),
            vec![2]
        );
        // An empty window (`from == to`) matches nothing, even when an
        // incident starts exactly at that instant.
        assert!(seqs(SimTime::from_hours(5), SimTime::from_hours(5)).is_empty());
        // An inverted window matches nothing.
        assert!(seqs(SimTime::from_hours(9), SimTime::from_hours(1)).is_empty());
        // A window covering everything returns the whole store.
        assert_eq!(
            seqs(SimTime::ZERO, SimTime::from_hours(1000)),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn inserts_keep_the_store_sorted_by_seq() {
        // Dossiers inserted out of order land at their sorted position, so
        // `get` can binary-search. This pins the sorted-insert invariant.
        let mut store = IncidentStore::new();
        for seq in [5u64, 1, 9, 3, 7] {
            store.insert(dossier(
                seq,
                seq,
                FaultKind::CudaError,
                ResolutionMechanism::Reattempt,
                vec![],
            ));
        }
        let seqs: Vec<u64> = store.all().iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![1, 3, 5, 7, 9]);
        for seq in [1u64, 3, 5, 7, 9] {
            assert_eq!(store.get(seq).map(|d| d.seq), Some(seq));
        }
        assert!(store.get(2).is_none());
        assert!(store.get(10).is_none());
        assert!(store.get(0).is_none());
    }

    #[test]
    fn attribution_stats_score_concluded_vs_ground_truth() {
        let mut store = store();
        assert!((store.attribution_accuracy() - 1.0).abs() < 1e-12);
        // A transient fault the control plane wrongly pinned on hardware.
        let mut wrong = dossier(
            9,
            11,
            FaultKind::InfinibandError,
            ResolutionMechanism::StopTimeEviction,
            vec![MachineId(7)],
        );
        wrong.root_cause = RootCause::Transient;
        wrong.concluded_cause = RootCause::Infrastructure;
        store.insert(wrong);
        let stats = store.attribution_stats();
        // Explicit incidents: the two CUDA errors (correctly attributed) plus
        // the misattributed InfiniBand transient.
        let (matching, total) = stats[&FaultCategory::Explicit];
        assert_eq!((matching, total), (2, 3));
        assert!(store.attribution_accuracy() < 1.0);
    }

    #[test]
    fn machine_query_matches_evicted_machines() {
        let store = store();
        let hits = store.query(&IncidentQuery::any().machine(MachineId(4)));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].seq, 3);
        assert!(store
            .query(&IncidentQuery::any().machine(MachineId(99)))
            .is_empty());
    }

    #[test]
    fn severity_floor_query() {
        let store = store();
        // The 2-machine analyzer eviction is Sev2; everything else is milder.
        let severe = store.query(&IncidentQuery::any().at_least(Severity::Sev2));
        assert_eq!(severe.len(), 1);
        assert_eq!(severe[0].seq, 3);
        let all = store.query(&IncidentQuery::any().at_least(Severity::Sev4));
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn resolution_counts_group_by_label_and_category() {
        let counts = store().resolution_counts();
        assert_eq!(counts[&("AutoFT-ER", "Explicit")], 2);
        assert_eq!(counts[&("Analyzer-ER", "Implicit")], 1);
        assert_eq!(counts[&("AutoFT-HU", "Manual Restart")], 1);
    }

    #[test]
    fn mechanism_shares_sum_to_one() {
        let shares = store().mechanism_shares();
        let total: f64 = shares.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn counts_and_stats() {
        let store = store();
        assert_eq!(store.counts_by_symptom()[&FaultKind::CudaError], 2);
        assert_eq!(store.eviction_stats(), (3, 0));
        let severities = store.severity_counts();
        assert_eq!(severities[&Severity::Sev2], 1);
        assert_eq!(severities[&Severity::Sev4], 2);
    }

    #[test]
    fn eviction_stats_count_hostages_not_culprits_when_events_are_recorded() {
        // A group over-eviction of 4 machines containing 1 real culprit: the
        // capture's per-machine eviction events make the over count exact (3
        // hostages), not the incident-level approximation (4).
        use crate::recorder::RecorderEntry;
        let mut d = dossier(
            9,
            3,
            FaultKind::JobHang,
            ResolutionMechanism::AnalyzerEviction,
            (0..4).map(MachineId).collect(),
        );
        d.over_evicted = true;
        for machine in 0..4u32 {
            d.capture.window.push(RecorderEntry {
                at: d.at,
                event: RecorderEvent::Eviction {
                    machine: MachineId(machine),
                    over_eviction: machine != 2, // machine-2 is the culprit
                },
            });
        }
        let mut store = IncidentStore::new();
        store.insert(d);
        assert_eq!(store.eviction_stats(), (4, 3));

        // Without per-machine events, the incident-level flag is the
        // upper-bound fallback.
        let mut synthetic = dossier(
            10,
            4,
            FaultKind::JobHang,
            ResolutionMechanism::AnalyzerEviction,
            (0..4).map(MachineId).collect(),
        );
        synthetic.over_evicted = true;
        let mut fallback_store = IncidentStore::new();
        fallback_store.insert(synthetic);
        assert_eq!(fallback_store.eviction_stats(), (4, 4));
    }

    #[test]
    fn postmortem_lookup_by_seq() {
        let store = store();
        let postmortem = store.postmortem(3).expect("incident 3 exists");
        assert!(postmortem.title.contains("Job Hang"));
        assert!(store.postmortem(99).is_none());
    }

    #[test]
    fn escalation_backlog_is_in_time_order() {
        let backlog = store().escalation_backlog();
        // Evicting incidents queue hardware tickets; seqs are non-decreasing.
        assert!(backlog
            .iter()
            .any(|(seq, e)| *seq == 1 && *e == Escalation::HardwareTicket));
        let seqs: Vec<u64> = backlog.iter().map(|(seq, _)| *seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }
}
