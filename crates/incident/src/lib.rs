//! Incident lifecycle subsystem: flight recorder, failure classification,
//! postmortems, and the queryable incident store.
//!
//! The Robust Controller (`byterobust-core`) resolves incidents end to end,
//! but resolving an incident and *explaining* it are different jobs. This
//! crate gives every incident a durable, replayable record of how it
//! unfolded, in four pieces:
//!
//! 1. [`recorder::FlightRecorder`] — a bounded ring buffer that continuously
//!    taps telemetry events, monitor verdicts, diagnoser/analyzer decisions
//!    and recovery-phase transitions. When the controller opens an incident
//!    the recorder snapshots the recent background context; when the incident
//!    closes, the captured window freezes into an immutable
//!    [`recorder::IncidentCapture`].
//! 2. [`classify::ClassificationMatrix`] — maps (incident category, root
//!    cause, resolution mechanism, blast radius) onto `REC-*` severity
//!    classes with escalation rules, in the style of production
//!    incident-response matrices.
//! 3. [`postmortem::Postmortem`] — renders a closed incident into a
//!    structured postmortem: timeline, evidence, unproductive-time breakdown
//!    by recovery phase (summing exactly to the incident's
//!    `FailoverCost::total()`), evicted machines, and recommended follow-ups.
//! 4. [`store::IncidentStore`] — the durable collection of
//!    [`store::IncidentDossier`]s with a query API (by category, severity,
//!    time window, machine, mechanism) that `JobReport` aggregations and the
//!    bench tables read instead of recomputing from raw records.
//! 5. [`codec`] — a hand-rolled, self-describing JSON codec (the offline
//!    stand-in for real serde) with [`codec::Encode`]/[`codec::Decode`] impls
//!    for every incident type, powering `IncidentStore::export_json` /
//!    `IncidentStore::import_json` and the fleet warehouse's disk-spill
//!    segment files.
//!
//! [`ResolutionMechanism`] lives here (rather than in `byterobust-core`) so
//! the classification matrix can key on it without a dependency cycle; the
//! core crate re-exports it from its historical `ft` path.
//!
//! ```
//! use byterobust_incident::prelude::*;
//! use byterobust_cluster::{FaultCategory, RootCause};
//!
//! let matrix = ClassificationMatrix::byterobust_default();
//! let class = matrix.classify(&ClassificationInput {
//!     category: FaultCategory::Explicit,
//!     root_cause: RootCause::Infrastructure,
//!     mechanism: ResolutionMechanism::ImmediateEviction,
//!     blast_radius: 1,
//!     over_evicted: false,
//!     reproducible: true,
//!     downtime: byterobust_sim::SimDuration::from_mins(12),
//! });
//! assert_eq!(class.severity, Severity::Sev3);
//! ```

pub mod classify;
pub mod codec;
pub mod filter;
pub mod mechanism;
pub mod postmortem;
pub mod recorder;
pub mod store;

pub use codec::{CodecError, Decode, Encode, ErrorPosition, JsonValue};

pub use classify::{
    Classification, ClassificationInput, ClassificationMatrix, Escalation, Severity,
};
pub use mechanism::ResolutionMechanism;
pub use postmortem::{PhaseCost, Postmortem};
pub use recorder::{
    telemetry_signature, EvidenceSource, FlightRecorder, FlightRecorderConfig, IncidentCapture,
    RecorderEntry, RecorderEvent, RecoveryPhase,
};
pub use store::{IncidentDossier, IncidentQuery, IncidentStore};

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::codec::{CodecError, Decode, Encode, ErrorPosition, JsonValue};

    pub use crate::classify::{
        Classification, ClassificationInput, ClassificationMatrix, Escalation, Severity,
    };
    pub use crate::mechanism::ResolutionMechanism;
    pub use crate::postmortem::{PhaseCost, Postmortem};
    pub use crate::recorder::{
        telemetry_signature, EvidenceSource, FlightRecorder, FlightRecorderConfig, IncidentCapture,
        RecorderEntry, RecorderEvent, RecoveryPhase,
    };
    pub use crate::store::{IncidentDossier, IncidentQuery, IncidentStore};
}
