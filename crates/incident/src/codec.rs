//! A small, self-describing JSON codec for the incident subsystem.
//!
//! The container has no registry access, so the workspace's `serde` is a
//! no-op stand-in (`crates/compat/serde`) — the `Serialize`/`Deserialize`
//! derives on the incident types compile but produce nothing. Persistence
//! cannot wait for the registry: warehouse disk-spill and incident-store
//! export both need real bytes on disk *now*. This module is the in-repo
//! bridge: a hand-rolled JSON value model ([`JsonValue`]), a writer with
//! full string escaping, a positioned parser, and [`Encode`]/[`Decode`]
//! impls for every type an [`IncidentDossier`] closes over.
//!
//! Design constraints, in priority order:
//!
//! 1. **Exact round-trip.** `decode(parse(render(encode(x)))) == x` for every
//!    encodable type — byte-identity of spilled-vs-resident warehouse queries
//!    depends on it. All incident state is integers, strings, and unit enums,
//!    so exactness is achievable without float-format heroics (the one `f64`
//!    writer uses Rust's shortest-round-trip `Display`).
//! 2. **Self-describing documents.** Enums encode as their variant names,
//!    variant payloads as tagged objects (`{"type": "Eviction", ...}`), and
//!    top-level documents carry a `format`/`version` header — a segment file
//!    can be read (and rejected) without out-of-band schema knowledge.
//! 3. **Errors, never panics.** Parsing a corrupted segment returns a
//!    [`CodecError`] naming the byte offset, line, and column; decoding a
//!    well-formed but wrong-shaped document returns one naming the JSON path
//!    (`dossiers[3].capture.window[2].event`). The swap to real serde deletes
//!    this module wholesale; nothing outside the codec API leaks its shape.

use std::fmt;

use byterobust_agent::DiagnosisConclusion;
use byterobust_cluster::{FaultCategory, FaultKind, MachineId, RootCause};
use byterobust_recovery::FailoverCost;
use byterobust_sim::{SimDuration, SimTime};
use byterobust_telemetry::{EventKind, SystemEvent};

use crate::classify::{Classification, Escalation, Severity};
use crate::mechanism::ResolutionMechanism;
use crate::postmortem::{PhaseCost, Postmortem};
use crate::recorder::{IncidentCapture, RecorderEntry, RecorderEvent, RecoveryPhase};
use crate::store::{IncidentDossier, IncidentStore};

/// Nesting depth at which the parser gives up: deep enough for any document
/// this workspace writes (dossier nesting is ~6 levels), shallow enough that
/// a corrupted `[[[[…` bomb errors out instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

/// Format header written by [`IncidentStore::export_json`] and checked by
/// [`IncidentStore::import_json`].
pub const STORE_FORMAT: &str = "byterobust-incident-store";

/// Current on-disk format version for every document this module writes.
pub const FORMAT_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Error type
// ---------------------------------------------------------------------------

/// Where a codec error was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorPosition {
    /// A text-level parse error: byte offset plus 1-based line and column.
    Byte {
        /// Byte offset into the document.
        offset: usize,
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
    },
    /// A structural decode error: the JSON path of the offending value
    /// (e.g. `dossiers[3].capture.window[2].event`). Empty at the root.
    Path(String),
}

/// A parse or decode failure. Always an error value, never a panic — a
/// corrupted segment file must degrade into a report, not a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Where the failure was detected.
    pub at: ErrorPosition,
    /// What went wrong.
    pub message: String,
}

impl CodecError {
    /// A free-form error at the document root, for callers layering their
    /// own validation on top of the codec (e.g. segment-file headers).
    pub fn other(message: impl Into<String>) -> CodecError {
        CodecError {
            at: ErrorPosition::Path(String::new()),
            message: message.into(),
        }
    }

    /// A decode error at the current (relative) path root.
    fn decode(message: impl Into<String>) -> CodecError {
        CodecError {
            at: ErrorPosition::Path(String::new()),
            message: message.into(),
        }
    }

    /// Prefixes a field name onto the error's path (decode errors only).
    fn in_field(mut self, field: &str) -> CodecError {
        if let ErrorPosition::Path(path) = &mut self.at {
            if path.is_empty() {
                *path = field.to_string();
            } else if path.starts_with('[') {
                *path = format!("{field}{path}");
            } else {
                *path = format!("{field}.{path}");
            }
        }
        self
    }

    /// Prefixes an array index onto the error's path (decode errors only).
    fn in_index(mut self, index: usize) -> CodecError {
        if let ErrorPosition::Path(path) = &mut self.at {
            if path.is_empty() {
                *path = format!("[{index}]");
            } else if path.starts_with('[') {
                *path = format!("[{index}]{path}");
            } else {
                *path = format!("[{index}].{path}");
            }
        }
        self
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.at {
            ErrorPosition::Byte {
                offset,
                line,
                column,
            } => write!(
                f,
                "parse error at line {line}, column {column} (byte {offset}): {}",
                self.message
            ),
            ErrorPosition::Path(path) if path.is_empty() => {
                write!(f, "decode error at document root: {}", self.message)
            }
            ErrorPosition::Path(path) => write!(f, "decode error at {path}: {}", self.message),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// The value model
// ---------------------------------------------------------------------------

/// An in-memory JSON value. Object member order is preserved (a `Vec`, not a
/// map), so encoding is deterministic: the writer emits members in insertion
/// order and two encodes of equal values are byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case: times, counts, ids).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A finite float, written in Rust's shortest round-trip form.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, members in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(members: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            members
                .into_iter()
                .map(|(key, value)| (key.to_string(), value))
                .collect(),
        )
    }

    /// The member of an object, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// A one-word description of the value's kind, for error messages.
    fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::U64(_) | JsonValue::I64(_) => "integer",
            JsonValue::F64(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }

    /// Decodes the member `key` of an object into `T`, attributing errors to
    /// that key's path.
    pub fn field<T: Decode>(&self, key: &str) -> Result<T, CodecError> {
        match self.get(key) {
            Some(value) => T::decode(value).map_err(|err| err.in_field(key)),
            None => match self {
                JsonValue::Object(_) => Err(CodecError::decode(format!("missing field `{key}`"))),
                other => Err(CodecError::decode(format!(
                    "expected an object with field `{key}`, found {}",
                    other.kind()
                ))),
            },
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, CodecError> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(CodecError::decode(format!(
                "expected a string, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as a `u64`.
    pub fn as_u64(&self) -> Result<u64, CodecError> {
        match self {
            JsonValue::U64(n) => Ok(*n),
            other => Err(CodecError::decode(format!(
                "expected an unsigned integer, found {}",
                other.kind()
            ))),
        }
    }

    // -----------------------------------------------------------------------
    // Writer
    // -----------------------------------------------------------------------

    /// Renders the value as a compact JSON document. Deterministic: equal
    /// values render to byte-identical text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            JsonValue::I64(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            JsonValue::F64(x) => {
                // Rust's `Display` for floats is the shortest string that
                // parses back to the same bits, so the round trip is exact.
                // Non-finite values are not representable in JSON; encoders
                // in this workspace never produce them (asserted).
                debug_assert!(x.is_finite(), "non-finite floats are not encodable");
                if x.is_finite() {
                    let _ = fmt::Write::write_fmt(out, format_args!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => render_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. The whole input must be one value (trailing
    /// non-whitespace is an error). Errors carry byte offset, line, column.
    pub fn parse(text: &str) -> Result<JsonValue, CodecError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value(0)?;
        parser.skip_whitespace();
        if parser.pos < parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }
}

/// Writes a string literal with JSON escaping: quotes, backslashes, and all
/// control characters; non-ASCII passes through as UTF-8.
fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> CodecError {
        self.error_at(self.pos, message)
    }

    fn error_at(&self, offset: usize, message: impl Into<String>) -> CodecError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..offset.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        CodecError {
            at: ErrorPosition::Byte {
                offset,
                line,
                column,
            },
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), CodecError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{}`, found {}",
                byte as char,
                self.describe_next()
            )))
        }
    }

    fn describe_next(&self) -> String {
        match self.peek() {
            Some(b) if b.is_ascii_graphic() => format!("`{}`", b as char),
            Some(b) => format!("byte 0x{b:02x}"),
            None => "end of input".to_string(),
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, CodecError> {
        if depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error(format!("expected a value, found {}", self.describe_next()))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, CodecError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, CodecError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => {
                    return Err(self.error(format!(
                        "expected `,` or `}}` in object, found {}",
                        self.describe_next()
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, CodecError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => {
                    return Err(self.error(format!(
                        "expected `,` or `]` in array, found {}",
                        self.describe_next()
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, CodecError> {
        if self.peek() != Some(b'"') {
            return Err(self.error(format!("expected a string, found {}", self.describe_next())));
        }
        let start = self.pos;
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error_at(start, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow immediately.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    return Err(self.error("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.error("unpaired low surrogate"));
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => {
                            return Err(
                                self.error(format!("invalid escape {}", self.describe_next()))
                            )
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the byte
                    // stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, CodecError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.error("expected four hex digits after \\u")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<JsonValue, CodecError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let is_integer = !text.contains(['.', 'e', 'E']);
        if is_integer {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(JsonValue::I64(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(JsonValue::F64(x)),
            _ => Err(self.error_at(start, format!("invalid number `{text}`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Encode / Decode traits and primitive impls
// ---------------------------------------------------------------------------

/// Turns a value into its [`JsonValue`] representation.
pub trait Encode {
    /// Encodes `self`.
    fn encode(&self) -> JsonValue;
}

/// Rebuilds a value from its [`JsonValue`] representation.
pub trait Decode: Sized {
    /// Decodes a value; errors name the offending JSON path.
    fn decode(value: &JsonValue) -> Result<Self, CodecError>;
}

/// Renders an encodable value as a compact JSON document.
pub fn to_json<T: Encode>(value: &T) -> String {
    value.encode().render()
}

/// Parses and decodes a JSON document in one step.
pub fn from_json<T: Decode>(text: &str) -> Result<T, CodecError> {
    T::decode(&JsonValue::parse(text)?)
}

/// Checks a document's `format`/`version` header against the expected pair.
pub fn check_format(document: &JsonValue, format: &str) -> Result<(), CodecError> {
    let found: String = document.field("format")?;
    if found != format {
        return Err(CodecError::decode(format!(
            "unexpected format `{found}` (expected `{format}`)"
        ))
        .in_field("format"));
    }
    let version: u64 = document.field("version")?;
    if version != FORMAT_VERSION {
        return Err(CodecError::decode(format!(
            "unsupported version {version} (this build reads version {FORMAT_VERSION})"
        ))
        .in_field("version"));
    }
    Ok(())
}

impl Encode for bool {
    fn encode(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Decode for bool {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        match value {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(CodecError::decode(format!(
                "expected a bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Encode for u64 {
    fn encode(&self) -> JsonValue {
        JsonValue::U64(*self)
    }
}

impl Decode for u64 {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        value.as_u64()
    }
}

impl Encode for u32 {
    fn encode(&self) -> JsonValue {
        JsonValue::U64(u64::from(*self))
    }
}

impl Decode for u32 {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        u32::try_from(value.as_u64()?)
            .map_err(|_| CodecError::decode("integer out of range for u32"))
    }
}

impl Encode for usize {
    fn encode(&self) -> JsonValue {
        JsonValue::U64(*self as u64)
    }
}

impl Decode for usize {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        usize::try_from(value.as_u64()?)
            .map_err(|_| CodecError::decode("integer out of range for usize"))
    }
}

impl Encode for i64 {
    fn encode(&self) -> JsonValue {
        if *self >= 0 {
            JsonValue::U64(*self as u64)
        } else {
            JsonValue::I64(*self)
        }
    }
}

impl Decode for i64 {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        match value {
            JsonValue::I64(n) => Ok(*n),
            JsonValue::U64(n) => {
                i64::try_from(*n).map_err(|_| CodecError::decode("integer out of range for i64"))
            }
            other => Err(CodecError::decode(format!(
                "expected an integer, found {}",
                other.kind()
            ))),
        }
    }
}

impl Encode for f64 {
    fn encode(&self) -> JsonValue {
        JsonValue::F64(*self)
    }
}

impl Decode for f64 {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        match value {
            JsonValue::F64(x) => Ok(*x),
            JsonValue::U64(n) => Ok(*n as f64),
            JsonValue::I64(n) => Ok(*n as f64),
            other => Err(CodecError::decode(format!(
                "expected a number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Encode for String {
    fn encode(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl Decode for String {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        Ok(value.as_str()?.to_string())
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Encode::encode).collect())
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        match value {
            JsonValue::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| T::decode(item).map_err(|err| err.in_index(i)))
                .collect(),
            other => Err(CodecError::decode(format!(
                "expected an array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self) -> JsonValue {
        match self {
            Some(value) => value.encode(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        match value {
            JsonValue::Null => Ok(None),
            other => T::decode(other).map(Some),
        }
    }
}

// ---------------------------------------------------------------------------
// Foreign scalar types
// ---------------------------------------------------------------------------

impl Encode for SimTime {
    fn encode(&self) -> JsonValue {
        JsonValue::U64(self.as_millis())
    }
}

impl Decode for SimTime {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        Ok(SimTime::from_millis(value.as_u64()?))
    }
}

impl Encode for SimDuration {
    fn encode(&self) -> JsonValue {
        JsonValue::U64(self.as_millis())
    }
}

impl Decode for SimDuration {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        Ok(SimDuration::from_millis(value.as_u64()?))
    }
}

impl Encode for MachineId {
    fn encode(&self) -> JsonValue {
        JsonValue::U64(u64::from(self.0))
    }
}

impl Decode for MachineId {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        Ok(MachineId(u32::decode(value)?))
    }
}

/// Generates string-tagged [`Encode`]/[`Decode`] impls for a unit enum: the
/// variant name is the wire form, unknown names are decode errors naming the
/// expected type.
macro_rules! string_enum_codec {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl Encode for $ty {
            fn encode(&self) -> JsonValue {
                JsonValue::Str(
                    match self {
                        $($ty::$variant => stringify!($variant),)+
                    }
                    .to_string(),
                )
            }
        }

        impl Decode for $ty {
            fn decode(value: &JsonValue) -> Result<Self, CodecError> {
                match value.as_str()? {
                    $(stringify!($variant) => Ok($ty::$variant),)+
                    other => Err(CodecError::decode(format!(
                        concat!("unknown ", stringify!($ty), " variant `{}`"),
                        other
                    ))),
                }
            }
        }
    };
}

string_enum_codec!(FaultCategory {
    Explicit,
    Implicit,
    ManualRestart
});
string_enum_codec!(FaultKind {
    CudaError,
    CpuOverload,
    CpuOom,
    InsufficientDiskSpace,
    InfinibandError,
    FilesystemMount,
    HdfsError,
    ContainerError,
    OsKernelPanic,
    GpuMemoryError,
    ExternalServiceError,
    GpuUnavailable,
    DiskFault,
    JobHang,
    MfuDecline,
    NanValue,
    CodeDataAdjustment,
});
string_enum_codec!(RootCause {
    Infrastructure,
    UserCode,
    Human,
    Transient
});
string_enum_codec!(ResolutionMechanism {
    ImmediateEviction,
    StopTimeEviction,
    Reattempt,
    Rollback,
    DualPhaseReplay,
    AnalyzerEviction,
    HotUpdate,
});
string_enum_codec!(Severity {
    Sev1,
    Sev2,
    Sev3,
    Sev4
});
string_enum_codec!(Escalation {
    PageOncall,
    HardwareTicket,
    StressTestSweep,
    CodeReviewAudit,
    CapacityReview,
});
string_enum_codec!(RecoveryPhase {
    Detection,
    Localization,
    Scheduling,
    PodBuild,
    CheckpointLoad,
    Recompute,
});
string_enum_codec!(DiagnosisConclusion {
    FaultyMachines,
    UserCodeSuspected,
    AllTestsPassed,
});
string_enum_codec!(EventKind {
    XidError,
    CudaRuntimeError,
    NicDown,
    NicFlapping,
    SwitchUnresponsive,
    DcgmQueryFailure,
    EccRowRemap,
    ThermalAlert,
    KernelPanic,
    OomKill,
    FilesystemMountLost,
    RemoteStorageError,
    ContainerFailure,
});

/// The stable `REC-*` codes the classification matrix can assign. `rec_code`
/// is `&'static str` in memory; decoding maps the wire string back onto the
/// canonical static — an unknown code is a decode error, not a dangling
/// reference.
const REC_CODES: [&str; 7] = [
    "REC-HU", "REC-RT", "REC-RB", "REC-EV1", "REC-EV2", "REC-RPL", "REC-AGG",
];

fn decode_rec_code(value: &JsonValue) -> Result<&'static str, CodecError> {
    let text = value.as_str()?;
    REC_CODES
        .iter()
        .find(|code| **code == text)
        .copied()
        .ok_or_else(|| CodecError::decode(format!("unknown REC code `{text}`")))
}

// ---------------------------------------------------------------------------
// Structs
// ---------------------------------------------------------------------------

impl Encode for FailoverCost {
    fn encode(&self) -> JsonValue {
        JsonValue::object(vec![
            ("detection", self.detection.encode()),
            ("localization", self.localization.encode()),
            ("scheduling", self.scheduling.encode()),
            ("pod_build", self.pod_build.encode()),
            ("checkpoint_load", self.checkpoint_load.encode()),
            ("recompute", self.recompute.encode()),
        ])
    }
}

impl Decode for FailoverCost {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        Ok(FailoverCost {
            detection: value.field("detection")?,
            localization: value.field("localization")?,
            scheduling: value.field("scheduling")?,
            pod_build: value.field("pod_build")?,
            checkpoint_load: value.field("checkpoint_load")?,
            recompute: value.field("recompute")?,
        })
    }
}

impl Encode for SystemEvent {
    fn encode(&self) -> JsonValue {
        JsonValue::object(vec![
            ("at", self.at.encode()),
            ("kind", self.kind.encode()),
            ("machine", self.machine.encode()),
        ])
    }
}

impl Decode for SystemEvent {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        Ok(SystemEvent {
            at: value.field("at")?,
            kind: value.field("kind")?,
            machine: value.field("machine")?,
        })
    }
}

impl Encode for Classification {
    fn encode(&self) -> JsonValue {
        JsonValue::object(vec![
            ("severity", self.severity.encode()),
            ("rec_code", JsonValue::Str(self.rec_code.to_string())),
            ("escalations", self.escalations.encode()),
        ])
    }
}

impl Decode for Classification {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        Ok(Classification {
            severity: value.field("severity")?,
            rec_code: value
                .get("rec_code")
                .ok_or_else(|| CodecError::decode("missing field `rec_code`"))
                .and_then(decode_rec_code)
                .map_err(|err| err.in_field("rec_code"))?,
            escalations: value.field("escalations")?,
        })
    }
}

impl Encode for RecorderEvent {
    fn encode(&self) -> JsonValue {
        let tag = |name: &str, mut rest: Vec<(&str, JsonValue)>| {
            let mut members = vec![("type", JsonValue::Str(name.to_string()))];
            members.append(&mut rest);
            JsonValue::object(members)
        };
        match self {
            RecorderEvent::Telemetry(event) => tag("Telemetry", vec![("event", event.encode())]),
            RecorderEvent::Detected { kind, latency } => tag(
                "Detected",
                vec![("kind", kind.encode()), ("latency", latency.encode())],
            ),
            RecorderEvent::MonitorVerdict { machine, issue } => tag(
                "MonitorVerdict",
                vec![("machine", machine.encode()), ("issue", issue.encode())],
            ),
            RecorderEvent::DiagnosisDecision {
                conclusion,
                suspects,
                duration,
            } => tag(
                "DiagnosisDecision",
                vec![
                    ("conclusion", conclusion.encode()),
                    ("suspects", suspects.encode()),
                    ("duration", duration.encode()),
                ],
            ),
            RecorderEvent::AnalyzerDecision {
                machines,
                shared_group,
                outlier_ranks,
                over_evicts,
            } => tag(
                "AnalyzerDecision",
                vec![
                    ("machines", machines.encode()),
                    ("shared_group", shared_group.encode()),
                    ("outlier_ranks", outlier_ranks.encode()),
                    ("over_evicts", over_evicts.encode()),
                ],
            ),
            RecorderEvent::ReplayVerdict { suspects, duration } => tag(
                "ReplayVerdict",
                vec![
                    ("suspects", suspects.encode()),
                    ("duration", duration.encode()),
                ],
            ),
            RecorderEvent::PhaseTransition { phase, duration } => tag(
                "PhaseTransition",
                vec![("phase", phase.encode()), ("duration", duration.encode())],
            ),
            RecorderEvent::Eviction {
                machine,
                over_eviction,
            } => tag(
                "Eviction",
                vec![
                    ("machine", machine.encode()),
                    ("over_eviction", over_eviction.encode()),
                ],
            ),
            RecorderEvent::Rollback { to_version } => {
                tag("Rollback", vec![("to_version", to_version.encode())])
            }
            RecorderEvent::HotUpdateApplied { version } => {
                tag("HotUpdateApplied", vec![("version", version.encode())])
            }
            RecorderEvent::Resumed { step } => tag("Resumed", vec![("step", step.encode())]),
            RecorderEvent::CapacityStarvation {
                preempted,
                migrated,
                shortfall,
            } => tag(
                "CapacityStarvation",
                vec![
                    ("preempted", preempted.encode()),
                    ("migrated", migrated.encode()),
                    ("shortfall", shortfall.encode()),
                ],
            ),
        }
    }
}

impl Decode for RecorderEvent {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        let tag: String = value.field("type")?;
        match tag.as_str() {
            "Telemetry" => Ok(RecorderEvent::Telemetry(value.field("event")?)),
            "Detected" => Ok(RecorderEvent::Detected {
                kind: value.field("kind")?,
                latency: value.field("latency")?,
            }),
            "MonitorVerdict" => Ok(RecorderEvent::MonitorVerdict {
                machine: value.field("machine")?,
                issue: value.field("issue")?,
            }),
            "DiagnosisDecision" => Ok(RecorderEvent::DiagnosisDecision {
                conclusion: value.field("conclusion")?,
                suspects: value.field("suspects")?,
                duration: value.field("duration")?,
            }),
            "AnalyzerDecision" => Ok(RecorderEvent::AnalyzerDecision {
                machines: value.field("machines")?,
                shared_group: value.field("shared_group")?,
                outlier_ranks: value.field("outlier_ranks")?,
                over_evicts: value.field("over_evicts")?,
            }),
            "ReplayVerdict" => Ok(RecorderEvent::ReplayVerdict {
                suspects: value.field("suspects")?,
                duration: value.field("duration")?,
            }),
            "PhaseTransition" => Ok(RecorderEvent::PhaseTransition {
                phase: value.field("phase")?,
                duration: value.field("duration")?,
            }),
            "Eviction" => Ok(RecorderEvent::Eviction {
                machine: value.field("machine")?,
                over_eviction: value.field("over_eviction")?,
            }),
            "Rollback" => Ok(RecorderEvent::Rollback {
                to_version: value.field("to_version")?,
            }),
            "HotUpdateApplied" => Ok(RecorderEvent::HotUpdateApplied {
                version: value.field("version")?,
            }),
            "Resumed" => Ok(RecorderEvent::Resumed {
                step: value.field("step")?,
            }),
            "CapacityStarvation" => Ok(RecorderEvent::CapacityStarvation {
                preempted: value.field("preempted")?,
                migrated: value.field("migrated")?,
                shortfall: value.field("shortfall")?,
            }),
            other => Err(
                CodecError::decode(format!("unknown RecorderEvent variant `{other}`"))
                    .in_field("type"),
            ),
        }
    }
}

impl Encode for RecorderEntry {
    fn encode(&self) -> JsonValue {
        JsonValue::object(vec![
            ("at", self.at.encode()),
            ("event", self.event.encode()),
        ])
    }
}

impl Decode for RecorderEntry {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        Ok(RecorderEntry {
            at: value.field("at")?,
            event: value.field("event")?,
        })
    }
}

impl Encode for IncidentCapture {
    fn encode(&self) -> JsonValue {
        JsonValue::object(vec![
            ("seq", self.seq.encode()),
            ("kind", self.kind.encode()),
            ("opened_at", self.opened_at.encode()),
            ("closed_at", self.closed_at.encode()),
            ("context", self.context.encode()),
            ("window", self.window.encode()),
        ])
    }
}

impl Decode for IncidentCapture {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        Ok(IncidentCapture {
            seq: value.field("seq")?,
            kind: value.field("kind")?,
            opened_at: value.field("opened_at")?,
            closed_at: value.field("closed_at")?,
            context: value.field("context")?,
            window: value.field("window")?,
        })
    }
}

impl Encode for IncidentDossier {
    fn encode(&self) -> JsonValue {
        JsonValue::object(vec![
            ("seq", self.seq.encode()),
            ("at", self.at.encode()),
            ("kind", self.kind.encode()),
            ("category", self.category.encode()),
            ("root_cause", self.root_cause.encode()),
            ("concluded_cause", self.concluded_cause.encode()),
            ("mechanism", self.mechanism.encode()),
            ("cost", self.cost.encode()),
            ("evicted", self.evicted.encode()),
            ("over_evicted", self.over_evicted.encode()),
            ("resumed_step", self.resumed_step.encode()),
            ("classification", self.classification.encode()),
            ("capture", self.capture.encode()),
        ])
    }
}

impl Decode for IncidentDossier {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        Ok(IncidentDossier {
            seq: value.field("seq")?,
            at: value.field("at")?,
            kind: value.field("kind")?,
            category: value.field("category")?,
            root_cause: value.field("root_cause")?,
            concluded_cause: value.field("concluded_cause")?,
            mechanism: value.field("mechanism")?,
            cost: value.field("cost")?,
            evicted: value.field("evicted")?,
            over_evicted: value.field("over_evicted")?,
            resumed_step: value.field("resumed_step")?,
            classification: value.field("classification")?,
            capture: value.field("capture")?,
        })
    }
}

impl Encode for PhaseCost {
    fn encode(&self) -> JsonValue {
        JsonValue::object(vec![
            ("phase", self.phase.encode()),
            ("duration", self.duration.encode()),
        ])
    }
}

impl Decode for PhaseCost {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        Ok(PhaseCost {
            phase: value.field("phase")?,
            duration: value.field("duration")?,
        })
    }
}

impl Encode for Postmortem {
    fn encode(&self) -> JsonValue {
        JsonValue::object(vec![
            ("seq", self.seq.encode()),
            ("title", self.title.encode()),
            ("severity", self.severity.encode()),
            ("rec_code", JsonValue::Str(self.rec_code.to_string())),
            ("kind", self.kind.encode()),
            ("category", self.category.encode()),
            ("root_cause", self.root_cause.encode()),
            ("concluded_cause", self.concluded_cause.encode()),
            ("mechanism", self.mechanism.encode()),
            ("opened_at", self.opened_at.encode()),
            ("closed_at", self.closed_at.encode()),
            ("context", self.context.encode()),
            ("timeline", self.timeline.encode()),
            ("phase_costs", self.phase_costs.encode()),
            ("total_cost", self.total_cost.encode()),
            ("evicted", self.evicted.encode()),
            ("over_evicted", self.over_evicted.encode()),
            ("resumed_step", self.resumed_step.encode()),
            ("follow_ups", self.follow_ups.encode()),
        ])
    }
}

impl Decode for Postmortem {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        Ok(Postmortem {
            seq: value.field("seq")?,
            title: value.field("title")?,
            severity: value.field("severity")?,
            rec_code: value
                .get("rec_code")
                .ok_or_else(|| CodecError::decode("missing field `rec_code`"))
                .and_then(decode_rec_code)
                .map_err(|err| err.in_field("rec_code"))?,
            kind: value.field("kind")?,
            category: value.field("category")?,
            root_cause: value.field("root_cause")?,
            concluded_cause: value.field("concluded_cause")?,
            mechanism: value.field("mechanism")?,
            opened_at: value.field("opened_at")?,
            closed_at: value.field("closed_at")?,
            context: value.field("context")?,
            timeline: value.field("timeline")?,
            phase_costs: value.field("phase_costs")?,
            total_cost: value.field("total_cost")?,
            evicted: value.field("evicted")?,
            over_evicted: value.field("over_evicted")?,
            resumed_step: value.field("resumed_step")?,
            follow_ups: value.field("follow_ups")?,
        })
    }
}

impl Encode for IncidentStore {
    fn encode(&self) -> JsonValue {
        JsonValue::object(vec![(
            "dossiers",
            JsonValue::Array(self.all().iter().map(|d| d.as_ref().encode()).collect()),
        )])
    }
}

impl Decode for IncidentStore {
    fn decode(value: &JsonValue) -> Result<Self, CodecError> {
        let dossiers: Vec<IncidentDossier> = value.field("dossiers")?;
        let mut store = IncidentStore::new();
        for dossier in dossiers {
            store.insert(dossier);
        }
        Ok(store)
    }
}

impl IncidentStore {
    /// Exports the store as a self-describing JSON document (format header
    /// plus every dossier). Deterministic: equal stores export byte-identical
    /// text.
    pub fn export_json(&self) -> String {
        JsonValue::object(vec![
            ("format", JsonValue::Str(STORE_FORMAT.to_string())),
            ("version", JsonValue::U64(FORMAT_VERSION)),
            (
                "dossiers",
                JsonValue::Array(self.all().iter().map(|d| d.as_ref().encode()).collect()),
            ),
        ])
        .render()
    }

    /// Imports a store previously written by [`IncidentStore::export_json`].
    /// Never panics: corruption and shape mismatches come back as a
    /// positioned [`CodecError`].
    pub fn import_json(text: &str) -> Result<IncidentStore, CodecError> {
        let document = JsonValue::parse(text)?;
        check_format(&document, STORE_FORMAT)?;
        let dossiers: Vec<IncidentDossier> = document.field("dossiers")?;
        let mut store = IncidentStore::new();
        for dossier in dossiers {
            store.insert(dossier);
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{ClassificationInput, ClassificationMatrix};

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: &T) {
        let text = to_json(value);
        let back: T = from_json(&text).unwrap_or_else(|err| panic!("decode failed: {err}\n{text}"));
        assert_eq!(&back, value, "round trip changed the value\n{text}");
        // Re-encoding the decoded value is byte-identical: the writer is
        // deterministic and nothing was lost.
        assert_eq!(to_json(&back), text);
    }

    fn sample_dossier(seq: u64) -> IncidentDossier {
        let cost = FailoverCost {
            detection: SimDuration::from_secs(30),
            localization: SimDuration::from_secs(120),
            scheduling: SimDuration::from_secs(60),
            pod_build: SimDuration::from_secs(5),
            checkpoint_load: SimDuration::from_secs(20),
            recompute: SimDuration::from_secs(15),
        };
        let classification =
            ClassificationMatrix::byterobust_default().classify(&ClassificationInput {
                category: FaultCategory::Implicit,
                root_cause: RootCause::Infrastructure,
                mechanism: ResolutionMechanism::AnalyzerEviction,
                blast_radius: 2,
                over_evicted: true,
                reproducible: false,
                downtime: cost.total(),
            });
        let mut capture = IncidentCapture::empty(seq, FaultKind::JobHang, SimTime::from_hours(3));
        capture.closed_at = capture.opened_at + cost.total();
        capture.context.push(RecorderEntry {
            at: SimTime::from_hours(3),
            event: RecorderEvent::Telemetry(SystemEvent::new(
                SimTime::from_hours(3),
                EventKind::XidError,
                MachineId(7),
            )),
        });
        for event in every_recorder_event() {
            capture.window.push(RecorderEntry {
                at: capture.opened_at,
                event,
            });
        }
        IncidentDossier {
            seq,
            at: SimTime::from_hours(3),
            kind: FaultKind::JobHang,
            category: FaultCategory::Implicit,
            root_cause: RootCause::Infrastructure,
            concluded_cause: RootCause::Transient,
            mechanism: ResolutionMechanism::AnalyzerEviction,
            cost,
            evicted: vec![MachineId(7), MachineId(9)],
            over_evicted: true,
            resumed_step: 4321,
            classification,
            capture,
        }
    }

    /// One instance of every `RecorderEvent` variant, including
    /// `CapacityStarvation`, with payloads that exercise every field.
    fn every_recorder_event() -> Vec<RecorderEvent> {
        vec![
            RecorderEvent::Telemetry(SystemEvent::new(
                SimTime::from_secs(9),
                EventKind::NicDown,
                MachineId(3),
            )),
            RecorderEvent::Detected {
                kind: FaultKind::InfinibandError,
                latency: SimDuration::from_secs(12),
            },
            RecorderEvent::MonitorVerdict {
                machine: MachineId(5),
                issue: "GPU \"fell\" off the bus\n\ttab & non-ASCII: héllo 中文 🚂".to_string(),
            },
            RecorderEvent::DiagnosisDecision {
                conclusion: DiagnosisConclusion::FaultyMachines,
                suspects: vec![MachineId(1), MachineId(2)],
                duration: SimDuration::from_mins(8),
            },
            RecorderEvent::AnalyzerDecision {
                machines: vec![MachineId(4), MachineId(6)],
                shared_group: Some("PP".to_string()),
                outlier_ranks: 3,
                over_evicts: true,
            },
            RecorderEvent::AnalyzerDecision {
                machines: vec![],
                shared_group: None,
                outlier_ranks: 0,
                over_evicts: false,
            },
            RecorderEvent::ReplayVerdict {
                suspects: vec![MachineId(11)],
                duration: SimDuration::from_mins(30),
            },
            RecorderEvent::PhaseTransition {
                phase: RecoveryPhase::CheckpointLoad,
                duration: SimDuration::from_secs(90),
            },
            RecorderEvent::Eviction {
                machine: MachineId(8),
                over_eviction: true,
            },
            RecorderEvent::Rollback { to_version: 4 },
            RecorderEvent::HotUpdateApplied { version: 5 },
            RecorderEvent::Resumed { step: 123456 },
            RecorderEvent::CapacityStarvation {
                preempted: 2,
                migrated: 1,
                shortfall: 3,
            },
        ]
    }

    #[test]
    fn every_recorder_event_variant_round_trips() {
        let events = every_recorder_event();
        // The list covers the enum: one entry per variant (AnalyzerDecision
        // twice, for Some/None shared_group).
        let mut seen: Vec<&'static str> = events
            .iter()
            .map(|event| match event {
                RecorderEvent::Telemetry(_) => "Telemetry",
                RecorderEvent::Detected { .. } => "Detected",
                RecorderEvent::MonitorVerdict { .. } => "MonitorVerdict",
                RecorderEvent::DiagnosisDecision { .. } => "DiagnosisDecision",
                RecorderEvent::AnalyzerDecision { .. } => "AnalyzerDecision",
                RecorderEvent::ReplayVerdict { .. } => "ReplayVerdict",
                RecorderEvent::PhaseTransition { .. } => "PhaseTransition",
                RecorderEvent::Eviction { .. } => "Eviction",
                RecorderEvent::Rollback { .. } => "Rollback",
                RecorderEvent::HotUpdateApplied { .. } => "HotUpdateApplied",
                RecorderEvent::Resumed { .. } => "Resumed",
                RecorderEvent::CapacityStarvation { .. } => "CapacityStarvation",
            })
            .collect();
        seen.dedup();
        assert_eq!(seen.len(), 12, "one sample per RecorderEvent variant");
        for event in &events {
            roundtrip(event);
        }
    }

    #[test]
    fn scalar_and_enum_round_trips() {
        roundtrip(&SimTime::from_millis(u64::MAX / 2));
        roundtrip(&SimDuration::ZERO);
        roundtrip(&MachineId(u32::MAX));
        for kind in FaultKind::ALL {
            roundtrip(&kind);
        }
        for severity in Severity::ALL {
            roundtrip(&severity);
        }
        roundtrip(&RootCause::UserCode);
        roundtrip(&ResolutionMechanism::DualPhaseReplay);
        roundtrip(&Escalation::StressTestSweep);
        roundtrip(&Some("maybe".to_string()));
        roundtrip(&Option::<String>::None);
        roundtrip(&1.5f64);
        roundtrip(&0.1f64);
        roundtrip(&-3i64);
    }

    #[test]
    fn string_escaping_edge_cases_round_trip() {
        let cases = [
            "plain".to_string(),
            "with \"quotes\" and \\backslashes\\".to_string(),
            "newline\nreturn\rtab\tbackspace\u{08}formfeed\u{0C}".to_string(),
            "low controls: \u{01}\u{02}\u{1f}".to_string(),
            "non-ASCII: café 中文 κόσμος".to_string(),
            "astral: 🚂🔥 (surrogate-pair territory)".to_string(),
            String::new(),
            "ends with backslash \\".to_string(),
            "/slashes/ need no escape".to_string(),
        ];
        for case in &cases {
            roundtrip(case);
        }
    }

    #[test]
    fn parser_accepts_foreign_escapes_and_whitespace() {
        // Escaped solidus, \u escapes (including a surrogate pair), and
        // insignificant whitespace — all legal JSON this writer never emits
        // but an external producer might.
        let value = JsonValue::parse(
            " { \"a\" : \"\\/\\u0041\\ud83d\\ude80\" , \"b\" : [ 1 , -2 , 3.5 ] } ",
        )
        .expect("parses");
        assert_eq!(value.get("a").unwrap().as_str().unwrap(), "/A🚀");
        assert_eq!(
            value.get("b").unwrap(),
            &JsonValue::Array(vec![
                JsonValue::U64(1),
                JsonValue::I64(-2),
                JsonValue::F64(3.5)
            ])
        );
    }

    #[test]
    fn dossier_postmortem_and_store_round_trip() {
        let dossier = sample_dossier(42);
        roundtrip(&dossier);
        roundtrip(&Postmortem::for_dossier(&dossier));

        let mut store = IncidentStore::new();
        store.insert(sample_dossier(1));
        store.insert(sample_dossier(2));
        store.insert(sample_dossier(5));
        roundtrip(&store);

        let exported = store.export_json();
        let imported = IncidentStore::import_json(&exported).expect("import succeeds");
        assert_eq!(imported, store);
        assert_eq!(imported.export_json(), exported);
        // The postmortem rendered from the imported store is byte-identical.
        assert_eq!(
            imported.postmortem(5).unwrap().render(),
            store.postmortem(5).unwrap().render()
        );
    }

    #[test]
    fn corrupted_documents_fail_with_positioned_errors_not_panics() {
        let mut store = IncidentStore::new();
        store.insert(sample_dossier(1));
        let good = store.export_json();

        // Truncation: the parser reports where the text ended.
        let truncated = &good[..good.len() / 2];
        let err = IncidentStore::import_json(truncated).expect_err("truncated must fail");
        assert!(
            matches!(err.at, ErrorPosition::Byte { .. }),
            "truncation is a parse error with a byte position: {err}"
        );

        // A flipped structural character: positioned parse error.
        let flipped = good.replacen(':', ";", 1);
        let err = IncidentStore::import_json(&flipped).expect_err("corrupt must fail");
        let ErrorPosition::Byte { offset, line, .. } = err.at else {
            panic!("expected a byte-positioned error, got {err}");
        };
        assert!(offset > 0 && line >= 1);
        assert!(
            err.to_string().contains("line"),
            "error names its line: {err}"
        );

        // Well-formed JSON of the wrong shape: path-positioned decode error.
        let wrong_shape = good.replace("\"CudaError\"", "\"NotAFaultKind\"");
        let wrong_shape = wrong_shape.replace("\"JobHang\"", "\"NotAFaultKind\"");
        let err = IncidentStore::import_json(&wrong_shape).expect_err("bad enum must fail");
        let ErrorPosition::Path(path) = &err.at else {
            panic!("expected a path-positioned error, got {err}");
        };
        assert!(
            path.starts_with("dossiers[0]."),
            "decode error names the dossier path, got `{path}`"
        );

        // A foreign format header is rejected up front.
        let foreign = good.replace(STORE_FORMAT, "some-other-format");
        let err = IncidentStore::import_json(&foreign).expect_err("foreign format must fail");
        assert!(err.to_string().contains("unexpected format"), "{err}");

        // A future version is rejected, not misread.
        let future = good.replacen("\"version\":1", "\"version\":999", 1);
        let err = IncidentStore::import_json(&future).expect_err("future version must fail");
        assert!(err.to_string().contains("unsupported version"), "{err}");
    }

    #[test]
    fn parser_rejects_pathological_inputs_without_panicking() {
        for bad in [
            "",
            "   ",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "\"bad escape \\q\"",
            "\"lone surrogate \\ud800\"",
            "nul\u{0}l",
            "01x",
            "--5",
            "1e999",
        ] {
            let err = JsonValue::parse(bad).expect_err(bad);
            assert!(matches!(err.at, ErrorPosition::Byte { .. }), "{bad}: {err}");
        }
        // The depth bomb errors out instead of blowing the stack.
        let bomb = "[".repeat(MAX_DEPTH + 10);
        assert!(JsonValue::parse(&bomb).is_err());
    }

    #[test]
    fn deep_but_legal_nesting_parses() {
        let depth = MAX_DEPTH - 2;
        let doc = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(JsonValue::parse(&doc).is_ok());
    }
}
