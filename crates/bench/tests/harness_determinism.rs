//! Determinism of the threaded bench harness: fanning independent seeded
//! simulations out over threads must produce byte-identical results to
//! running them serially — the `reproduce` binary prints exactly these
//! results, so this pins its stdout across `BYTEROBUST_SERIAL` settings.

use byterobust_bench::experiments::job_reports;
use byterobust_core::JobConfig;
use byterobust_fleet::{FleetConfig, FleetRunner};
use byterobust_sim::SimDuration;

fn drill_jobs() -> Vec<(JobConfig, u64)> {
    let dense = JobConfig::small_test();
    let mut moe = JobConfig::small_test();
    moe.job.model.name = "tiny-moe-test".to_string();
    moe.fault.manual_restart_interval = SimDuration::from_hours(4);
    moe.fault.user_code_fraction = 0.45;
    let mut short = JobConfig::small_test();
    short.duration = SimDuration::from_hours(18);
    vec![(dense, 20250916), (moe, 20250917), (short, 20250918)]
}

#[test]
fn threaded_job_reports_are_byte_identical_to_serial() {
    let jobs = drill_jobs();
    let parallel = job_reports(&jobs, true);
    let serial = job_reports(&jobs, false);
    assert_eq!(parallel.len(), serial.len());
    for (i, (p, s)) in parallel.iter().zip(serial.iter()).enumerate() {
        // JobReport carries every series, incident, and dossier of the run;
        // the Debug rendering is a full byte-level comparison of all of it.
        assert_eq!(
            format!("{p:?}"),
            format!("{s:?}"),
            "job {i}: threaded report diverged from the serial reference"
        );
    }
}

#[test]
fn traces_are_byte_identical_across_host_threading() {
    // The sim-time trace must be a pure function of the seed: running the
    // drill on a worker thread (as the parallel `reproduce` harness does)
    // and on the main thread must export byte-identical traces — host
    // threading lives entirely in the wall-clock domain.
    let serial = FleetRunner::new(FleetConfig::small_drill(), 20250916)
        .run()
        .trace
        .export_json();
    let threaded = std::thread::spawn(|| {
        FleetRunner::new(FleetConfig::small_drill(), 20250916)
            .run()
            .trace
            .export_json()
    })
    .join()
    .expect("drill thread panicked");
    assert_eq!(
        serial, threaded,
        "threaded trace diverged from the serial reference"
    );
}

#[test]
fn alert_timelines_are_byte_identical_across_host_threading() {
    // Same contract for the alerting plane: the timeline is evaluated in sim
    // time only, so the parallel harness (which runs `alerts_panel` on a
    // worker thread) must reproduce it byte-for-byte.
    let rules = || byterobust_obs::RuleSet::default_rules();
    let serial = FleetRunner::new(
        FleetConfig::small_drill().with_alert_rules(rules()),
        20250916,
    )
    .run()
    .alerts
    .export_json();
    let threaded = std::thread::spawn(move || {
        FleetRunner::new(
            FleetConfig::small_drill().with_alert_rules(rules()),
            20250916,
        )
        .run()
        .alerts
        .export_json()
    })
    .join()
    .expect("drill thread panicked");
    assert_eq!(
        serial, threaded,
        "threaded alert timeline diverged from the serial reference"
    );
}

#[test]
fn threaded_reports_keep_input_order() {
    let jobs = drill_jobs();
    let reports = job_reports(&jobs, true);
    // The short job must come back third regardless of which thread finished
    // first: reports are joined in spawn order.
    assert_eq!(reports.len(), 3);
    assert_eq!(reports[1].job_name, "tiny-moe-test");
    assert!(
        reports[2].ettr.total_time() < reports[0].ettr.total_time(),
        "the 18-hour job must report less accounted time than the 2-day job"
    );
}
