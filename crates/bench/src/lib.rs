//! Benchmark harness shared library.
//!
//! Every table and figure of the paper's evaluation (§2 and §8) has a
//! corresponding function in [`experiments`] that runs the relevant workload
//! on the simulator and renders the same rows/series the paper reports. The
//! Criterion benches under `benches/` and the `reproduce` binary are thin
//! wrappers over these functions, so `cargo bench` and
//! `cargo run -p byterobust-bench --bin reproduce` produce identical content.

pub mod experiments;
pub mod perf;
pub mod table;

pub use perf::{FleetBenchStats, MegaBenchStats, PerfRecorder};
pub use table::Table;

/// Whether the harness should run scaled-down experiments (set the
/// `BYTEROBUST_FAST=1` environment variable). Full-scale runs simulate the
/// paper's three-month 9,600-GPU deployments; fast mode shortens the
/// simulated duration (not the cluster size) so CI finishes quickly.
pub fn fast_mode() -> bool {
    std::env::var("BYTEROBUST_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Whether the harness fans independent seeded simulations out over
/// `std::thread::scope` threads. Output is byte-identical either way (pinned
/// by the determinism tests); only the wall clock changes.
///
/// Resolution order: `BYTEROBUST_SERIAL=1` forces single-threaded (the
/// determinism reference and a profiling convenience), `BYTEROBUST_PARALLEL=1`
/// forces threads, and otherwise threads are used exactly when the host
/// exposes more than one CPU — on a single-core host the fan-out only adds
/// scheduling overhead.
pub fn parallel_harness() -> bool {
    let flag = |name: &str| std::env::var(name).map(|v| v == "1").unwrap_or(false);
    if flag("BYTEROBUST_SERIAL") {
        return false;
    }
    if flag("BYTEROBUST_PARALLEL") {
        return true;
    }
    std::thread::available_parallelism().is_ok_and(|n| n.get() > 1)
}
