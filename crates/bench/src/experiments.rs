//! One function per paper table / figure.
//!
//! Each function runs the relevant workload on the simulator and renders the
//! same rows or series the paper reports. See `DESIGN.md` §4 for the
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured numbers.

use std::collections::BTreeMap;

use byterobust_agent::{Monitor, SelectiveStressTester};
use byterobust_analyzer::{AggregationResult, EvictionDecision};
use byterobust_checkpoint::{CheckpointApproach, CheckpointEngine};
use byterobust_cluster::{
    FaultCategory, FaultEvent, FaultInjector, FaultInjectorConfig, FaultKind, MachineId, RootCause,
};
use byterobust_core::{JobConfig, JobLifecycle, JobReport};
use byterobust_fleet::{
    BrokerConfig, FleetConfig, FleetQuery, FleetRunner, IncidentWarehouse, QueryResponse,
    SchedulerKind, SteppingMode, TrafficConfig, TrafficGenerator, WarehouseService,
    WarehouseStorage,
};
use byterobust_incident::{
    Classification, IncidentCapture, IncidentDossier, IncidentQuery, IncidentStore,
    ResolutionMechanism, Severity,
};
use byterobust_obs::{
    score_alerts, trace_diagnose, trace_diagnose_all, trace_get, AlertScorecard, AlertTimeline,
    MetricsRegistry, RuleSet, SpanKind, Trace, TraceQuery,
};
use byterobust_parallelism::ParallelismConfig;
use byterobust_recovery::{
    binomial_quantile, DualPhaseReplay, ReplayConfig, RestartCostModel, RestartStrategy,
    StandbyPoolConfig, WarmStandbyPool,
};
use byterobust_sim::{SimDuration, SimRng, SimTime};
use byterobust_trainsim::{CodeVersion, JobSpec, StepModel, TrainingRuntime};

use crate::fast_mode;
use crate::perf::{timed, FleetBenchStats, MegaBenchStats, QueryBenchStats};
use crate::table::{fmt_pct, fmt_secs, Table};

/// Deterministic seed shared by all experiments.
pub const SEED: u64 = 20250916;

/// Runs independent `(config, seed)` jobs and returns the reports in input
/// order — on one scoped thread per job when `parallel`, on the calling
/// thread otherwise. Each simulation owns its seed and shares nothing, so
/// the reports are bit-identical between the two modes (pinned by the
/// determinism test), while the parallel wall-clock cost is the slowest job
/// instead of the sum.
pub fn job_reports(jobs: &[(JobConfig, u64)], parallel: bool) -> Vec<JobReport> {
    if !parallel {
        return jobs
            .iter()
            .map(|(config, seed)| JobLifecycle::new(config.clone(), *seed).run())
            .collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|(config, seed)| {
                scope.spawn(move || JobLifecycle::new(config.clone(), *seed).run())
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("simulation thread panicked"))
            .collect()
    })
}

/// [`job_reports`] honouring the harness-wide parallelism policy
/// ([`crate::parallel_harness`]).
pub fn parallel_job_reports(jobs: &[(JobConfig, u64)]) -> Vec<JobReport> {
    job_reports(jobs, crate::parallel_harness())
}

/// Runs the two production deployment jobs of §8.1 (dense three-month job and
/// MoE one-month job on 9,600 GPUs) and returns their reports. The two
/// simulations run on separate threads ([`parallel_job_reports`]); outputs
/// are unchanged versus serial runs. In fast mode the simulated durations are
/// shortened ~10×, which preserves the shape of every derived table.
pub fn production_reports() -> (JobReport, JobReport) {
    let mut dense_cfg = JobConfig::production_dense_three_months();
    let mut moe_cfg = JobConfig::production_moe_one_month();
    if fast_mode() {
        dense_cfg.duration = SimDuration::from_days(9);
        moe_cfg.duration = SimDuration::from_days(3);
    }
    let mut reports = parallel_job_reports(&[(dense_cfg, SEED), (moe_cfg, SEED + 1)]).into_iter();
    let dense = reports.next().expect("dense report");
    let moe = reports.next().expect("moe report");
    (dense, moe)
}

/// A minimal dossier wrapping one raw injected fault, so injector samples
/// can flow through the [`IncidentStore`] query surface. Only the fields the
/// incident mix tables read (symptom, category, ground-truth root cause)
/// carry information; everything downstream of a real recovery is zeroed.
fn synthetic_dossier(event: &FaultEvent) -> IncidentDossier {
    IncidentDossier {
        seq: event.seq,
        at: event.at,
        kind: event.kind,
        category: event.kind.category(),
        root_cause: event.root_cause,
        concluded_cause: event.root_cause,
        mechanism: ResolutionMechanism::Reattempt,
        cost: Default::default(),
        evicted: Vec::new(),
        over_evicted: false,
        resumed_step: 0,
        classification: Classification {
            severity: Severity::Sev4,
            rec_code: "REC-SYNTHETIC",
            escalations: Vec::new(),
        },
        capture: IncidentCapture::empty(event.seq, event.kind, event.at),
    }
}

/// Table 1: distribution of training incidents over a large sample of the
/// production incident mix, plus Table 2's root-cause split for the three
/// symptoms it examines. The injected sample flows through an
/// [`IncidentStore`] and both tables are produced by its query surface —
/// one source of truth with the rest of the workspace, pinned byte-identical
/// to the historical raw-record fold by a transition test.
pub fn table1_incidents() -> String {
    let config = FaultInjectorConfig::default();
    let mut injector = FaultInjector::new(config, SimRng::new(SEED));
    let samples = if fast_mode() { 10_000 } else { 40_000 };
    let mut now = SimTime::ZERO;
    let mut store = IncidentStore::new();
    for _ in 0..samples {
        let event = injector.next_event(now);
        now = event.at;
        store.insert(synthetic_dossier(&event));
    }
    let counts = store.counts_by_symptom();

    let mut table = Table::new(
        "Table 1: distribution of training incidents (simulated production mix)",
        &[
            "Category",
            "Incident Symptom",
            "Count",
            "Percentage",
            "Paper %",
        ],
    );
    for kind in FaultKind::ALL {
        let count = counts.get(&kind).copied().unwrap_or(0);
        let category = match kind.category() {
            FaultCategory::Explicit => "Explicit",
            FaultCategory::Implicit => "Implicit",
            FaultCategory::ManualRestart => "Manual Restart",
        };
        table.row(&[
            category.to_string(),
            kind.symptom_name().to_string(),
            count.to_string(),
            fmt_pct(count as f64 / samples as f64),
            format!("{:.1}%", kind.table1_weight()),
        ]);
    }

    let mut table2 = Table::new(
        "Table 2: root cause of incidents (symptoms with tangled causes)",
        &["Symptom", "#Infrastructure", "#User Code", "#Total"],
    );
    for kind in [
        FaultKind::JobHang,
        FaultKind::GpuMemoryError,
        FaultKind::NanValue,
    ] {
        let matches = store.query(&IncidentQuery::any().kind(kind));
        let infra = matches
            .iter()
            .filter(|d| {
                matches!(
                    d.root_cause,
                    RootCause::Infrastructure | RootCause::Transient
                )
            })
            .count();
        let user = matches
            .iter()
            .filter(|d| matches!(d.root_cause, RootCause::UserCode))
            .count();
        table2.row(&[
            kind.symptom_name().to_string(),
            infra.to_string(),
            user.to_string(),
            (infra + user).to_string(),
        ]);
    }
    format!("{}\n{}", table.render(), table2.render())
}

/// Fig. 2: normalized loss and relative MFU of a 1,000-GPU job over a 10-day
/// span with frequent restarts.
pub fn fig2_loss_mfu() -> String {
    let job = JobSpec {
        model: byterobust_trainsim::ModelSpec::dense_70b(),
        parallelism: ParallelismConfig::new_3d(8, 5, 25, 8),
        global_batch: 500,
        micro_batch: 1,
        hardware: byterobust_trainsim::HardwareSpec::hopper(),
        target_steps: 100_000,
    };
    let days = if fast_mode() { 3 } else { 10 };
    let mut config = JobConfig::for_job(job, SimDuration::from_days(days));
    // Frequent manual adjustments, as in the paper's 28-run example.
    config.fault.manual_restart_interval = SimDuration::from_hours(9);
    let report = JobLifecycle::new(config, SEED + 2).run();

    let mut table = Table::new(
        "Fig. 2: normalized loss and relative MFU on a 1000-GPU job",
        &["Normalized Step", "Normalized Loss", "Relative MFU"],
    );
    let rel_mfu = report.relative_mfu_series();
    let max_step = report.final_step.max(1) as f64;
    let max_loss = report
        .loss_series
        .iter()
        .map(|p| p.value)
        .fold(f64::NEG_INFINITY, f64::max);
    for (loss, mfu) in report.loss_series.iter().zip(rel_mfu.iter()).step_by(4) {
        table.row(&[
            format!("{:.3}", loss.step as f64 / max_step),
            format!("{:.3}", loss.value / max_loss),
            format!("{:.3}", mfu.value),
        ]);
    }
    let runs = report.incidents.len() + 1;
    format!("{}\nTotal runs (restarts + 1): {}\n", table.render(), runs)
}

/// Fig. 3: unproductive-time breakdown per incident category.
///
/// Computed through the unified query plane: the job's incident store is
/// ingested into a warehouse, published to a [`WarehouseService`], and each
/// category row is the fold of one `FleetQuery::Dossiers` answer — the same
/// serving path live readers use — instead of a raw fold over the report's
/// incident records. The transition test pins the output byte-identical to
/// the legacy raw fold ([`JobReport::unproductive_breakdown`]).
pub fn fig3_unproductive(dense: &JobReport) -> String {
    let mut warehouse = IncidentWarehouse::new(SimDuration::from_hours(1));
    warehouse.ingest_store("dense", &dense.incident_store);
    let service = WarehouseService::default();
    service.publish(&warehouse);
    service.seal();

    let mut table = Table::new(
        "Fig. 3: unproductive time breakdown (mean seconds per incident)",
        &["Category", "Detection", "Localization", "Failover", "Total"],
    );
    let categories = [
        (FaultCategory::Explicit, "Explicit"),
        (FaultCategory::Implicit, "Implicit"),
        (FaultCategory::ManualRestart, "Manual Restart"),
    ];
    for (category, name) in categories {
        let query = FleetQuery::Dossiers(IncidentQuery::any().category(category));
        let Some((QueryResponse::Dossiers(hits), _)) = service.answer(&query) else {
            panic!("dossier arm is warehouse-backed");
        };
        if hits.is_empty() {
            continue;
        }
        // Hits arrive in canonical (start time, job, seq) order — for a
        // single shard, exactly the insertion order the raw fold used, so
        // the float accumulation is bit-identical.
        let n = hits.len() as f64;
        let (mut d, mut l, mut f) = (0.0, 0.0, 0.0);
        for (_, dossier) in &hits {
            d += dossier.cost.detection.as_secs_f64();
            l += dossier.cost.localization.as_secs_f64();
            f += dossier.cost.failover_only().as_secs_f64();
        }
        let (d, l, f) = (d / n, l / n, f / n);
        table.row(&[
            name.to_string(),
            fmt_secs(d),
            fmt_secs(l),
            fmt_secs(f),
            fmt_secs(d + l + f),
        ]);
    }
    table.render()
}

/// Table 3: detection time with vs. without inspections for representative
/// infrastructure root causes.
pub fn table3_detection() -> String {
    let monitor = Monitor::new();
    let mut table = Table::new(
        "Table 3: time to detect infrastructure failures (seconds)",
        &[
            "Category",
            "Root Cause",
            "w/ Inspection (s)",
            "w/o Inspection",
        ],
    );
    let rows: Vec<(&str, &str, f64, String)> = vec![
        (
            "Network",
            "NIC crash",
            monitor
                .detection_time_with_inspection(FaultKind::InfinibandError)
                .as_secs_f64(),
            "T_timeout".to_string(),
        ),
        (
            "Network",
            "Port Flapping",
            monitor
                .detection_time_with_inspection(FaultKind::InfinibandError)
                .as_secs_f64(),
            "T_timeout".to_string(),
        ),
        (
            "Network",
            "Switch Down",
            monitor.switch_down_detection_time().as_secs_f64(),
            "2*T_timeout".to_string(),
        ),
        (
            "GPU",
            "Driver Hang",
            monitor
                .detection_time_with_inspection(FaultKind::GpuUnavailable)
                .as_secs_f64(),
            "T_timeout".to_string(),
        ),
        (
            "GPU",
            "High Temperature",
            monitor
                .detection_time_with_inspection(FaultKind::GpuUnavailable)
                .as_secs_f64(),
            "T_monitor".to_string(),
        ),
        (
            "GPU",
            "GPU Lost",
            monitor
                .detection_time_with_inspection(FaultKind::GpuUnavailable)
                .as_secs_f64(),
            "T_timeout".to_string(),
        ),
        (
            "Host",
            "OS Kernel Fault",
            monitor
                .detection_time_with_inspection(FaultKind::OsKernelPanic)
                .as_secs_f64(),
            "T_timeout".to_string(),
        ),
    ];
    for (category, cause, with, without) in rows {
        table.row(&[
            category.to_string(),
            cause.to_string(),
            fmt_secs(with),
            without,
        ]);
    }
    let timeout = monitor.detection_time_without_inspection(FaultKind::GpuUnavailable);
    format!(
        "{}\nT_timeout = {} (PyTorch-Distributed collective timeout), T_monitor = {}\n",
        table.render(),
        timeout,
        SimDuration::from_mins(15)
    )
}

/// Table 4: distribution of resolved incidents across mechanisms for the two
/// production jobs, plus the §4.2 "lesson" mechanism shares and the severity
/// distribution. Every aggregate is an incident-store query — the table never
/// touches the raw incident records.
pub fn table4_resolution(dense: &JobReport, moe: &JobReport) -> String {
    let mut table = Table::new(
        "Table 4: incidents resolved per mechanism (count, share of job's incidents)",
        &["Job", "Mechanism", "Explicit", "Implicit", "Manual Restart"],
    );
    for (name, report) in [("Dense", dense), ("MoE", moe)] {
        let store = &report.incident_store;
        let counts = store.resolution_counts();
        let total = store.len().max(1);
        for mechanism in ["AutoFT-ER", "AutoFT-HU", "Analyzer-ER", "Rollback"] {
            let cell = |category: &str| -> String {
                match counts.get(&(mechanism, category)) {
                    Some(&count) => {
                        format!("{} ({})", count, fmt_pct(count as f64 / total as f64))
                    }
                    None => "-".to_string(),
                }
            };
            table.row(&[
                name.to_string(),
                mechanism.to_string(),
                cell("Explicit"),
                cell("Implicit"),
                cell("Manual Restart"),
            ]);
        }
    }

    let mut lesson = Table::new(
        "Lesson (Sec. 4.2): share of incidents resolved by each mechanism (dense job)",
        &["Mechanism", "Share"],
    );
    for (name, share) in dense.incident_store.mechanism_shares() {
        lesson.row(&[name.to_string(), fmt_pct(share)]);
    }

    let mut severity = Table::new(
        "Severity classes assigned by the incident classification matrix",
        &["Severity", "Dense", "MoE"],
    );
    let dense_severities = dense.incident_store.severity_counts();
    let moe_severities = moe.incident_store.severity_counts();
    for sev in byterobust_incident::Severity::ALL {
        severity.row(&[
            sev.label().to_string(),
            dense_severities.get(&sev).copied().unwrap_or(0).to_string(),
            moe_severities.get(&sev).copied().unwrap_or(0).to_string(),
        ]);
    }
    format!(
        "{}\n{}\n{}",
        table.render(),
        lesson.render(),
        severity.render()
    )
}

/// Table 6: incident resolution cost — ByteRobust vs. selective stress
/// testing. The "ours" columns are incident-store queries: the two jobs'
/// stores are merged into an [`IncidentWarehouse`] and the per-symptom
/// resolution times read from it, so the table shares its source of truth
/// with Table 4 instead of folding raw incident records.
pub fn table6_resolution_cost(dense: &JobReport, moe: &JobReport) -> String {
    let mut warehouse = IncidentWarehouse::default();
    warehouse.ingest_store("dense", &dense.incident_store);
    warehouse.ingest_store("moe", &moe.incident_store);
    let by_symptom = warehouse.resolution_time_by_symptom();
    let baseline = SelectiveStressTester::new();
    let mut table = Table::new(
        "Table 6: incident resolution cost comparison (seconds)",
        &[
            "Incident Symptom",
            "Ours Mean (s)",
            "Ours Max (s)",
            "Selective (s)",
        ],
    );
    let symptoms = [
        FaultKind::CudaError,
        FaultKind::InfinibandError,
        FaultKind::HdfsError,
        FaultKind::OsKernelPanic,
        FaultKind::GpuMemoryError,
        FaultKind::NanValue,
        FaultKind::GpuUnavailable,
        FaultKind::CodeDataAdjustment,
    ];
    for kind in symptoms {
        let (mean, max) = by_symptom
            .get(&kind)
            .copied()
            .unwrap_or((f64::NAN, f64::NAN));
        let selective = match baseline.resolution_time(kind, RootCause::Infrastructure) {
            Some(d) => fmt_secs(d.as_secs_f64()),
            None => "INF".to_string(),
        };
        let fmt_or_dash = |v: f64| {
            if v.is_nan() {
                "-".to_string()
            } else {
                fmt_secs(v)
            }
        };
        table.row(&[
            kind.symptom_name().to_string(),
            fmt_or_dash(mean),
            fmt_or_dash(max),
            selective,
        ]);
    }
    table.render()
}

/// Table 7: scheduling time of requeue vs. in-place hot update across scales.
pub fn table7_hot_update() -> String {
    let mut table = Table::new(
        "Table 7: scheduling time upon code-update events (seconds)",
        &["Scale (# GPUs)", "Requeue (s)", "Hot update (s)", "Speedup"],
    );
    for machines in [128usize, 256, 512, 1024] {
        let model = RestartCostModel::for_job(machines);
        let requeue = model.requeue_time().as_secs_f64();
        let hot = model.hot_update_time().as_secs_f64();
        table.row(&[
            format!("{}x16", machines),
            fmt_secs(requeue),
            fmt_secs(hot),
            format!("{:.2}x", requeue / hot),
        ]);
    }
    table.render()
}

/// Fig. 12: weighted-average scheduling (WAS) time upon machine-eviction
/// events for the four restart strategies, across scales.
pub fn fig12_was() -> String {
    let per_machine_failure_prob = 0.002;
    let catastrophic_machines = 32usize;
    let catastrophic_weight = 0.01;

    let mut table = Table::new(
        "Fig. 12: weighted average scheduling (WAS) time upon machine eviction (seconds)",
        &[
            "Scale",
            "Requeue",
            "Reschedule",
            "Oracle",
            "ByteRobust",
            "P99 standbys",
        ],
    );
    for machines in [128usize, 256, 512, 1024] {
        let model = RestartCostModel::for_job(machines);
        let p99 =
            binomial_quantile(machines as u64, per_machine_failure_prob, 0.99).max(1) as usize;

        // Scenario weights: evictions 1..=P99 weighted by the binomial pmf
        // (renormalized to 99%), catastrophic switch failure at 1%.
        let mut scenarios: Vec<(usize, f64)> = Vec::new();
        let pmf_sum: f64 = (1..=p99)
            .map(|k| {
                byterobust_recovery::binomial::binomial_pmf(
                    machines as u64,
                    per_machine_failure_prob,
                    k as u64,
                )
            })
            .sum();
        for k in 1..=p99 {
            let w = byterobust_recovery::binomial::binomial_pmf(
                machines as u64,
                per_machine_failure_prob,
                k as u64,
            ) / pmf_sum
                * (1.0 - catastrophic_weight);
            scenarios.push((k, w));
        }
        scenarios.push((catastrophic_machines, catastrophic_weight));

        let was = |strategy: RestartStrategy| -> f64 {
            scenarios
                .iter()
                .map(|&(evicted, weight)| {
                    let time = match strategy {
                        RestartStrategy::WarmStandby => {
                            let mut pool = WarmStandbyPool::new(StandbyPoolConfig::for_job(
                                machines,
                                per_machine_failure_prob,
                            ));
                            model.warm_standby_time(&mut pool, evicted, SimTime::ZERO)
                        }
                        other => model.time_for(other, evicted),
                    };
                    time.as_secs_f64() * weight
                })
                .sum()
        };

        table.row(&[
            format!("{}x16", machines),
            fmt_secs(was(RestartStrategy::Requeue)),
            fmt_secs(was(RestartStrategy::Reschedule)),
            fmt_secs(was(RestartStrategy::Oracle)),
            fmt_secs(was(RestartStrategy::WarmStandby)),
            p99.to_string(),
        ]);
    }
    table.render()
}

/// Table 8: checkpointing efficiency comparison over the Table 5 setups.
pub fn table8_checkpoint() -> String {
    let mut table = Table::new(
        "Table 8: checkpointing efficiency (every-step checkpointing)",
        &[
            "Model",
            "Scale",
            "Approach",
            "Blocking Time (s)",
            "MFU (% of no-ckpt)",
        ],
    );
    let setups: [(&str, &str, JobSpec); 4] = [
        ("70B", "128x16", JobSpec::table5_70b_small()),
        ("70B", "256x16", JobSpec::table5_70b_large()),
        ("256B", "512x16", JobSpec::table5_256b_small()),
        ("256B", "1024x16", JobSpec::table5_256b_large()),
    ];
    for (model, scale, job) in setups {
        let step =
            StepModel::new(job.clone()).step(&CodeVersion::initial(), 1.0, SimDuration::ZERO);
        for approach in CheckpointApproach::ALL {
            let engine = CheckpointEngine::new(approach, &job);
            let outcome = engine.save(&step);
            let mfu = engine.relative_mfu(&step, 1);
            table.row(&[
                model.to_string(),
                scale.to_string(),
                approach.name().to_string(),
                format!("{:.2}", outcome.blocking.as_secs_f64()),
                format!("{:.2}", mfu * 100.0),
            ]);
        }
    }
    table.render()
}

/// Fig. 10: cumulative and sliding-window ETTR for the two production jobs.
pub fn fig10_ettr(dense: &JobReport, moe: &JobReport) -> String {
    let mut out = String::new();
    let window = SimDuration::from_hours(1);
    for (name, report) in [("Dense", dense), ("MoE", moe)] {
        let mut table = Table::new(
            &format!("Fig. 10: ETTR over normalized time ({name} job)"),
            &[
                "Normalized Time",
                "Cumulative ETTR",
                "Sliding-window ETTR (1h)",
            ],
        );
        let cumulative = report.ettr.cumulative_series(20);
        let sliding = report.ettr.sliding_series(20, window);
        for (i, (c, s)) in cumulative.iter().zip(sliding.iter()).enumerate() {
            table.row(&[
                format!("{:.2}", (i + 1) as f64 / 20.0),
                format!("{:.4}", c.1),
                format!("{:.4}", s.1),
            ]);
        }
        out.push_str(&table.render());
        out.push_str(&format!(
            "{name}: final cumulative ETTR = {:.3}, incidents = {}, longest unproductive stretch = {}\n\n",
            report.ettr.cumulative_ettr(),
            report.incidents.len(),
            report.ettr.longest_unproductive(),
        ));
    }
    out
}

/// Fig. 11: relative MFU over the two production jobs (hot-update leaps).
pub fn fig11_mfu(dense: &JobReport, moe: &JobReport) -> String {
    let mut out = String::new();
    for (name, report) in [("Dense", dense), ("MoE", moe)] {
        let rel = report.relative_mfu_series();
        let mut table = Table::new(
            &format!("Fig. 11: relative MFU over normalized steps ({name} job)"),
            &["Normalized Step", "Relative MFU"],
        );
        let max_step = report.final_step.max(1) as f64;
        let stride = (rel.len() / 20).max(1);
        for point in rel.iter().step_by(stride) {
            table.row(&[
                format!("{:.2}", point.step as f64 / max_step),
                format!("{:.3}", point.value),
            ]);
        }
        let final_improvement = rel.last().map(|p| p.value).unwrap_or(1.0);
        out.push_str(&table.render());
        out.push_str(&format!(
            "{name}: final relative MFU = {:.2}x over the initial run, code versions deployed = {}\n\n",
            final_improvement, report.code_versions_deployed
        ));
    }
    out
}

/// Fig. 6 / Algorithm 1: dual-phase replay localization sweep.
pub fn replay_localization() -> String {
    let replay = DualPhaseReplay::new(ReplayConfig::fig6_example());
    let machines: Vec<MachineId> = (0..24).map(MachineId).collect();
    let faulty: std::collections::HashSet<MachineId> = [MachineId(13)].into_iter().collect();
    let outcome = replay.locate_with_ground_truth(&machines, &faulty);

    let mut table = Table::new(
        "Fig. 6 / Alg. 1: dual-phase replay localization (z=24, m=4, n=6)",
        &["Quantity", "Value"],
    );
    table.row(&["Injected SDC machine".to_string(), "machine-13".to_string()]);
    table.row(&[
        "Failing horizontal group".to_string(),
        format!("H{}", outcome.horizontal_group.unwrap()),
    ]);
    table.row(&[
        "Failing vertical group".to_string(),
        format!("V{}", outcome.vertical_group.unwrap()),
    ]);
    table.row(&[
        "Suspect set".to_string(),
        outcome
            .suspects
            .iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    table.row(&["Diagnosis time".to_string(), outcome.duration.to_string()]);

    // Sweep every culprit position to measure exactness.
    let mut exact = 0;
    for culprit in 0..24u32 {
        let faulty: std::collections::HashSet<MachineId> =
            [MachineId(culprit)].into_iter().collect();
        let o = replay.locate_with_ground_truth(&machines, &faulty);
        if o.suspects == vec![MachineId(culprit)] {
            exact += 1;
        }
    }
    table.row(&[
        "Exact isolations over 24 culprit positions".to_string(),
        format!("{exact}/24"),
    ]);
    table.render()
}

/// Fleet panel: N concurrent jobs over a shared standby pool vs. the same
/// jobs run solo (identical per-job seeds). Reports per-job ETTR both ways,
/// the shared-vs-solo standby provisioning, the cross-job warehouse severity
/// mix, the drained escalation backlog, and fleet-wide attribution accuracy.
pub fn fleet_panel() -> String {
    let runner = FleetRunner::new(FleetConfig::small_drill(), SEED + 40);
    let seeds = runner.job_seeds();
    // The solo baselines are independent simulations — run them on threads.
    let solo_jobs: Vec<(JobConfig, u64)> = runner
        .config()
        .jobs
        .iter()
        .zip(seeds.iter())
        .map(|(job, &seed)| (job.config.clone(), seed))
        .collect();
    let solo: Vec<JobReport> = parallel_job_reports(&solo_jobs);
    let fleet = runner.run();

    let mut table = Table::new(
        "Fleet panel: per-job ETTR, solo vs. shared-fleet run (same seeds)",
        &[
            "Job",
            "Machines",
            "Incidents",
            "Solo ETTR",
            "Fleet ETTR",
            "Final step",
        ],
    );
    for (job, solo_report) in fleet.jobs.iter().zip(solo.iter()) {
        table.row(&[
            job.label.clone(),
            job.machines.to_string(),
            job.report.incidents.len().to_string(),
            format!("{:.4}", solo_report.ettr.cumulative_ettr()),
            format!("{:.4}", job.report.ettr.cumulative_ettr()),
            job.report.final_step.to_string(),
        ]);
    }

    let mut severity = Table::new(
        "Fleet warehouse: severity distribution across jobs",
        &["Severity", "Count"],
    );
    for (sev, count) in fleet.warehouse.severity_counts() {
        severity.row(&[sev.label().to_string(), count.to_string()]);
    }

    let mut attribution = Table::new(
        "Fleet warehouse: attribution accuracy (concluded vs ground-truth cause)",
        &["Category", "Matching", "Total", "Accuracy"],
    );
    for (category, (matching, total)) in fleet.warehouse.attribution_stats() {
        attribution.row(&[
            format!("{category:?}"),
            matching.to_string(),
            total.to_string(),
            fmt_pct(matching as f64 / total.max(1) as f64),
        ]);
    }

    format!(
        "{}\n{}\n{}\nShared pool: target {} vs {} per-job; sweeps {} dispatched / {} drained in-run; \
         {} machines returned to standby; fleet ETTR = {:.4}\n",
        table.render(),
        severity.render(),
        attribution.render(),
        fleet.shared_pool_target,
        fleet.solo_pool_sum,
        fleet.drain.sweeps_dispatched,
        fleet.drain.sweeps_completed_in_run,
        fleet.drain.machines_returned_to_standby,
        fleet.fleet_ettr(),
    )
}

/// Broker panel: the starved fleet (`FleetConfig::starved_drill`) run twice
/// under identical seeds — broker disabled (the degraded baseline: every
/// pool shortfall pays the slow reschedule path) and broker enabled
/// (priority reservation, cross-job machine migration, queued admission).
/// Also asserts the byte-identity oracle: on a non-starved fleet the broker
/// never intervenes and the rendered report is byte-for-byte the
/// broker-disabled one.
pub fn broker_panel() -> String {
    // Oracle: a comfortably provisioned pool never starves, so the brokered
    // render must equal the un-brokered render exactly.
    let calm = FleetConfig::small_drill().with_pool_override(64);
    let calm_off = FleetRunner::new(calm.clone(), SEED + 50).run();
    let calm_on = FleetRunner::new(
        calm.with_broker(BrokerConfig {
            admission_limit: None,
            reserve_for_priority: 1,
        }),
        SEED + 50,
    )
    .run();
    assert_eq!(
        calm_off.render(),
        calm_on.render(),
        "non-starved fleet: broker on/off must render byte-identically"
    );
    assert_eq!(calm_off.pool_shortfall_events, 0);

    // The starved fleet, broker off vs on, same seed.
    let starved = FleetConfig::starved_drill();
    let priorities: Vec<&'static str> = starved
        .jobs
        .iter()
        .map(|job| job.priority.label())
        .collect();
    let off = FleetRunner::new(starved.clone().without_broker(), SEED + 51).run();
    let on = FleetRunner::new(starved, SEED + 51).run();

    let mut table = Table::new(
        "Broker panel: starved fleet, broker off vs on (same seeds)",
        &[
            "Job",
            "Priority",
            "ETTR off",
            "ETTR on",
            "Starved off",
            "Starved on",
            "Final step off",
            "Final step on",
        ],
    );
    let starved_off = off.starved_incidents_by_job();
    let starved_on = on.starved_incidents_by_job();
    for ((job_off, job_on), priority) in off.jobs.iter().zip(on.jobs.iter()).zip(&priorities) {
        table.row(&[
            job_off.label.clone(),
            priority.to_string(),
            format!("{:.4}", job_off.report.ettr.cumulative_ettr()),
            format!("{:.4}", job_on.report.ettr.cumulative_ettr()),
            starved_off
                .get(job_off.label.as_str())
                .copied()
                .unwrap_or(0)
                .to_string(),
            starved_on
                .get(job_on.label.as_str())
                .copied()
                .unwrap_or(0)
                .to_string(),
            job_off.report.final_step.to_string(),
            job_on.report.final_step.to_string(),
        ]);
    }

    let broker = on
        .broker
        .as_ref()
        .expect("starved drill enables the broker");
    format!(
        "{}\nFleet: ETTR {:.4} -> {:.4}; unproductive {} -> {} s; pool shortfalls {} -> {} \
         request(s)\nBroker: {} slot(s) preempted, {} machine(s) migrated, {} standby(s) held \
         for the critical tier, {} job(s) queued, {} machine(s) still rescheduled\n\
         Non-starved oracle: broker on/off byte-identical (asserted)\n",
        table.render(),
        off.fleet_ettr(),
        on.fleet_ettr(),
        off.fleet_unproductive_secs().round(),
        on.fleet_unproductive_secs().round(),
        off.pool_shortfall_events,
        on.pool_shortfall_events,
        broker.preempted_slots,
        broker.migrated_machines,
        broker.reserve_held_machines,
        broker.queued_jobs,
        broker.residual_shortfall_machines,
    )
}

/// Wall-clock and size measurements behind the persistence sections of
/// `BENCH_reproduce.json`. Never printed to stdout (timings differ run to
/// run; stdout must stay byte-identical).
#[derive(Debug, Clone, Copy)]
pub struct PersistenceStats {
    /// Bytes of the warehouse JSON export.
    pub export_bytes: usize,
    /// Wall seconds to export the warehouse to JSON.
    pub export_secs: f64,
    /// Wall seconds to parse + decode + re-index the export.
    pub import_secs: f64,
    /// Wall seconds for a full-warehouse query with every shard spilled
    /// (includes faulting all segments back in).
    pub cold_query_secs: f64,
    /// Wall seconds for the same query once everything is resident again.
    pub hot_query_secs: f64,
}

/// Persistence panel: the incident warehouse's export→import→render round
/// trip and the disk-spill path, on the small fleet drill.
///
/// Asserts three byte-identity oracles inline: (1) the re-imported
/// warehouse renders the same full-content digest as the original, (2) a
/// `JobReport` survives `export_json` → `import_json` exactly, and (3) a
/// fully spilled warehouse answers queries identically to the in-memory one
/// and to its own `linear_scan`. The timings go to `BENCH_reproduce.json`
/// (`persistence_*` sections, guarded by `ci/bench_budget.json`); stdout
/// carries only deterministic sizes and counts.
///
/// When `BYTEROBUST_PERSIST_DIR` is set, the exported warehouse JSON and the
/// two digests (original and re-imported) are also written there — the
/// `persistence-roundtrip` CI job diffs and uploads them.
pub fn persistence_panel() -> (String, PersistenceStats) {
    let runner = FleetRunner::new(FleetConfig::small_drill(), SEED + 60);
    let report = runner.run();
    let warehouse = &report.warehouse;

    // Export → import → render, timed; the digest pins full-content
    // identity, not just counts.
    let (exported, export_secs) = timed(|| warehouse.export_json());
    let (imported, import_secs) =
        timed(|| IncidentWarehouse::import_json(&exported).expect("own export must re-import"));
    let digest = warehouse.render_digest();
    let reimported_digest = imported.render_digest();
    assert_eq!(
        digest, reimported_digest,
        "export→import→render must reproduce the warehouse byte-for-byte"
    );

    // A full job report round-trips exactly, aggregations included.
    let job = &report.jobs[0];
    let job_json = job.report.export_json();
    let job_back = JobReport::import_json(&job_json).expect("job report must re-import");
    assert_eq!(
        job_back, job.report,
        "JobReport export→import must be exact"
    );

    // Cold-vs-hot query latency: rebuild the same warehouse with storage
    // attached, flush every shard to segment files, then time one
    // full-warehouse query twice — the first faults every segment back in,
    // the second runs hot.
    let persist_dir = std::env::var_os("BYTEROBUST_PERSIST_DIR").map(std::path::PathBuf::from);
    let spill_dir = persist_dir
        .clone()
        .unwrap_or_else(std::env::temp_dir)
        .join(format!("byterobust-persist-spill-{}", std::process::id()));
    let mut spilled = IncidentWarehouse::with_storage(
        warehouse.bucket_width(),
        WarehouseStorage::new(usize::MAX, &spill_dir),
    );
    for fleet_job in &report.jobs {
        spilled.ingest_store(&fleet_job.label, &fleet_job.report.incident_store);
    }
    let flushed_shards = spilled.flush_to_disk();
    let everything = IncidentQuery::any();
    let (cold_hits, cold_query_secs) = timed(|| spilled.query(&everything));
    let cold_count = cold_hits.len();
    drop(cold_hits);
    let (hot_hits, hot_query_secs) = timed(|| spilled.query(&everything));
    let warm_ids: Vec<(String, u64)> = hot_hits
        .iter()
        .map(|hit| (hit.job.to_string(), hit.dossier.seq))
        .collect();
    drop(hot_hits);
    let memory_ids: Vec<(String, u64)> = warehouse
        .query(&everything)
        .iter()
        .map(|hit| (hit.job.to_string(), hit.dossier.seq))
        .collect();
    let scan_ids: Vec<(String, u64)> = spilled
        .linear_scan(&everything)
        .iter()
        .map(|hit| (hit.job.to_string(), hit.dossier.seq))
        .collect();
    assert_eq!(cold_count, warm_ids.len(), "cold and hot hit counts agree");
    assert_eq!(warm_ids, memory_ids, "spill on/off queries must agree");
    assert_eq!(
        warm_ids, scan_ids,
        "spilled query must equal its linear scan"
    );
    assert_eq!(spilled.render_digest(), digest, "spilled digest must agree");
    let spill_segments = spilled.spill_stats().segments_written;
    let _ = std::fs::remove_dir_all(&spill_dir);

    // Artifacts for the persistence-roundtrip CI job, behind the flag.
    if let Some(dir) = &persist_dir {
        std::fs::create_dir_all(dir).expect("create BYTEROBUST_PERSIST_DIR");
        std::fs::write(dir.join("warehouse.json"), &exported).expect("write warehouse.json");
        std::fs::write(dir.join("warehouse_digest.txt"), &digest).expect("write digest");
        std::fs::write(
            dir.join("warehouse_digest_reimported.txt"),
            &reimported_digest,
        )
        .expect("write reimported digest");
    }

    let mut table = Table::new(
        "Persistence panel: incident warehouse export / import / disk-spill",
        &["Quantity", "Value"],
    );
    table.row(&[
        "Warehouse incidents".to_string(),
        warehouse.len().to_string(),
    ]);
    table.row(&[
        "Warehouse shards".to_string(),
        warehouse.jobs().len().to_string(),
    ]);
    table.row(&[
        "Export size (bytes)".to_string(),
        exported.len().to_string(),
    ]);
    table.row(&[
        "Job-report export size (bytes)".to_string(),
        job_json.len().to_string(),
    ]);
    table.row(&[
        "Spill segments written".to_string(),
        spill_segments.to_string(),
    ]);
    table.row(&[
        "Shards flushed to disk".to_string(),
        flushed_shards.to_string(),
    ]);
    table.row(&[
        "Cold query hits (== hot)".to_string(),
        cold_count.to_string(),
    ]);
    let stats = PersistenceStats {
        export_bytes: exported.len(),
        export_secs,
        import_secs,
        cold_query_secs,
        hot_query_secs,
    };
    (
        format!(
            "{}\nRound-trip oracles: export→import→render digest byte-identical; JobReport \
             export→import exact; spilled queries equal in-memory and linear scan (all asserted)\n",
            table.render()
        ),
        stats,
    )
}

/// Wall-clock self-profiling behind `BENCH_obs.json`. Never printed to
/// stdout (timings and op counts differ run to run / per scheduler; stdout
/// must stay byte-identical).
#[derive(Debug, Clone)]
pub struct ObsStats {
    /// Wall seconds to export the drill trace to JSON.
    pub trace_export_secs: f64,
    /// Wall seconds to parse + decode the export back.
    pub trace_import_secs: f64,
    /// Wall seconds to walk every cause chain out of the trace.
    pub trace_diagnose_secs: f64,
    /// The full metrics registry written to `BENCH_obs.json`.
    pub registry: MetricsRegistry,
}

/// Observability panel: the sim-time trace of the small fleet drill, its
/// determinism oracles, and the cause-chain walker's conformance against the
/// incident store.
///
/// Asserts inline: (1) the heap and naive-scan runs produce byte-identical
/// trace exports, (2) a disk-spilled run's trace is byte-identical too
/// (spill is invisible to the sim-time domain), (3) the trace export is an
/// `import_json` fixed point, (4) `trace_diagnose` reconstructs, for *every*
/// recorded incident, the mechanism, concluded cause, and eviction set the
/// dossier recorded — from spans alone, and (5) the wall-clock metrics
/// registry export is a fixed point of its own codec.
///
/// The wall-clock domain (scheduler op counters, warehouse query latencies,
/// spill/fault-in bytes, broker grant outcomes, pool occupancy) is collected
/// into the returned [`MetricsRegistry`] and written to `BENCH_obs.json` by
/// `reproduce`; stdout carries only deterministic counts.
pub fn obs_panel() -> (String, ObsStats) {
    let runner = FleetRunner::new(FleetConfig::small_drill(), SEED + 70);
    let heap = runner.run();
    let naive = runner.run_with(SchedulerKind::NaiveScan);
    let (trace_json, trace_export_secs) = timed(|| heap.trace.export_json());
    assert_eq!(
        trace_json,
        naive.trace.export_json(),
        "heap vs naive-scan traces must be byte-identical"
    );

    // The same drill with the warehouse spilling to disk: the sim-time trace
    // must not notice.
    let spill_dir =
        std::env::temp_dir().join(format!("byterobust-obs-spill-{}", std::process::id()));
    let spilled = FleetRunner::new(
        FleetConfig::small_drill().with_warehouse_storage(WarehouseStorage::new(16, &spill_dir)),
        SEED + 70,
    )
    .run();
    assert_eq!(
        trace_json,
        spilled.trace.export_json(),
        "spill on/off traces must be byte-identical"
    );

    let (imported, trace_import_secs) =
        timed(|| Trace::import_json(&trace_json).expect("own trace export must re-import"));
    assert_eq!(
        imported.export_json(),
        trace_json,
        "trace export must be a fixed point"
    );
    let chrome = heap.trace.to_chrome_json();

    // Cause-chain conformance: every dossier in every job's store must be
    // reconstructible from spans alone, agreeing on mechanism, concluded
    // cause, and eviction set.
    let (chains, trace_diagnose_secs) = timed(|| trace_diagnose_all(&heap.trace));
    let mut verified = 0usize;
    let mut mechanisms: BTreeMap<String, usize> = BTreeMap::new();
    for job in &heap.jobs {
        for dossier in job.report.incident_store.all() {
            let chain = trace_diagnose(&heap.trace, &job.label, dossier.seq)
                .expect("every recorded incident has a cause chain in the trace");
            assert_eq!(
                chain.mechanism, dossier.mechanism,
                "{}#{}: trace-reconstructed mechanism",
                job.label, dossier.seq
            );
            assert_eq!(
                chain.concluded_cause, dossier.concluded_cause,
                "{}#{}: trace-reconstructed cause",
                job.label, dossier.seq
            );
            assert_eq!(
                chain.evicted, dossier.evicted,
                "{}#{}: trace-reconstructed eviction set",
                job.label, dossier.seq
            );
            *mechanisms
                .entry(chain.mechanism.display_name().to_string())
                .or_default() += 1;
            verified += 1;
        }
    }
    assert_eq!(
        chains.len(),
        verified,
        "one cause chain per recorded incident"
    );

    // The query surface, on deterministic counts only.
    let evict_spans = trace_get(&heap.trace, &TraceQuery::new().kind(SpanKind::Evict)).len();

    // Wall-clock domain: exercise the spilled warehouse (one cold query that
    // may fault segments in, one hot re-run), then collect everything into
    // the registry. None of this reaches stdout.
    let everything = IncidentQuery::any();
    let cold_hits = spilled.warehouse.query(&everything).len();
    let hot_hits = spilled.warehouse.query(&everything).len();
    assert_eq!(cold_hits, hot_hits, "cold and hot queries agree");
    let (query_hot, query_faulted) = spilled.warehouse.query_latency();
    let spill_stats = spilled.warehouse.spill_stats();
    drop(spilled);
    let _ = std::fs::remove_dir_all(&spill_dir);

    // Broker grant outcomes from the starved drill; its trace carries the
    // broker's interventions as spans with matching counts.
    let starved = FleetRunner::new(FleetConfig::starved_drill(), SEED + 71).run();
    let broker = starved
        .broker
        .as_ref()
        .expect("starved drill enables the broker");
    let starved_kind_count = |kind: SpanKind| {
        starved
            .trace
            .spans
            .iter()
            .filter(|span| span.kind == kind)
            .count()
    };
    assert_eq!(
        starved_kind_count(SpanKind::Preemption),
        broker.preempted_slots,
        "one Preemption span per preempted slot"
    );
    assert_eq!(
        starved_kind_count(SpanKind::Migration),
        broker.migrated_machines,
        "one Migration span per migrated machine"
    );
    let broker_spans = starved_kind_count(SpanKind::Admission)
        + starved_kind_count(SpanKind::Preemption)
        + starved_kind_count(SpanKind::Migration);

    let mut registry = MetricsRegistry::new();
    let heap_ops = heap.scheduler_ops;
    let naive_ops = naive.scheduler_ops;
    registry.set_counter("scheduler.heap.picks", heap_ops.picks);
    registry.set_counter("scheduler.heap.pushes", heap_ops.heap_pushes);
    registry.set_counter("scheduler.heap.stale_drops", heap_ops.stale_drops);
    registry.set_counter("scheduler.heap.tie_draws", heap_ops.tie_draws);
    registry.set_counter("scheduler.naive.picks", naive_ops.picks);
    registry.set_counter(
        "scheduler.naive.scan_comparisons",
        naive_ops.scan_comparisons,
    );
    registry.set_counter("scheduler.naive.tie_draws", naive_ops.tie_draws);
    registry.set_counter(
        "warehouse.segments_written",
        spill_stats.segments_written as u64,
    );
    registry.set_counter("warehouse.fault_ins", spill_stats.fault_ins as u64);
    registry.set_counter(
        "warehouse.spill_bytes_written",
        spill_stats.spill_bytes_written,
    );
    registry.set_counter("warehouse.fault_in_bytes", spill_stats.fault_in_bytes);
    registry.set_histogram("warehouse.query_hot_nanos", query_hot);
    registry.set_histogram("warehouse.query_faulted_nanos", query_faulted);
    registry.set_counter("broker.preempted_slots", broker.preempted_slots as u64);
    registry.set_counter("broker.migrated_machines", broker.migrated_machines as u64);
    registry.set_counter("broker.queued_jobs", broker.queued_jobs as u64);
    registry.set_counter(
        "broker.residual_shortfall_machines",
        broker.residual_shortfall_machines as u64,
    );
    registry.set_counter(
        "broker.reserve_held_machines",
        broker.reserve_held_machines as u64,
    );
    registry.set_gauge("pool.ready_final", starved.shared_pool_ready_final as f64);
    registry.set_gauge("pool.target", starved.shared_pool_target as f64);
    registry.set_counter(
        "pool.shortfall_events",
        starved.pool_shortfall_events as u64,
    );
    for (kind, count) in heap.trace.counts_by_kind() {
        registry.set_counter(&format!("trace.spans.{}", kind.label()), count as u64);
    }
    let registry_json = registry.export_json();
    let registry_back =
        MetricsRegistry::import_json(&registry_json).expect("own metrics export must re-import");
    assert_eq!(
        registry_back.export_json(),
        registry_json,
        "metrics export must be a fixed point"
    );

    let mut table = Table::new(
        "Observability panel: sim-time tracing on the small fleet drill",
        &["Quantity", "Value"],
    );
    table.row(&[
        "Trace spans".to_string(),
        heap.trace.spans.len().to_string(),
    ]);
    table.row(&[
        "Trace scopes".to_string(),
        heap.trace.scopes().len().to_string(),
    ]);
    table.row(&[
        "Trace export (bytes)".to_string(),
        trace_json.len().to_string(),
    ]);
    table.row(&[
        "Chrome export (bytes)".to_string(),
        chrome.len().to_string(),
    ]);
    table.row(&["Cause chains verified".to_string(), verified.to_string()]);
    table.row(&[
        "Evict spans (trace_get)".to_string(),
        evict_spans.to_string(),
    ]);
    table.row(&[
        "Broker spans (starved drill)".to_string(),
        broker_spans.to_string(),
    ]);

    let mut kinds = Table::new("Trace span kinds (small drill)", &["Kind", "Count"]);
    for (kind, count) in heap.trace.counts_by_kind() {
        if count > 0 {
            kinds.row(&[kind.label().to_string(), count.to_string()]);
        }
    }

    let mut chains_table = Table::new(
        "Cause chains by reconstructed mechanism (trace vs dossier: all agree)",
        &["Mechanism", "Chains"],
    );
    for (mechanism, count) in &mechanisms {
        chains_table.row(&[mechanism.clone(), count.to_string()]);
    }

    let stats = ObsStats {
        trace_export_secs,
        trace_import_secs,
        trace_diagnose_secs,
        registry,
    };
    (
        format!(
            "{}\n{}\n{}\nObservability oracles: heap/naive and spill on/off traces byte-identical; \
             trace and metrics exports are import fixed points; every cause chain agrees with its \
             recorded dossier (all asserted)\n",
            table.render(),
            kinds.render(),
            chains_table.render(),
        ),
        stats,
    )
}

/// Wall-clock measurements and lead-time scorecards behind the `alerts`
/// section of `BENCH_obs.json`.
pub struct AlertsStats {
    /// Wall seconds to score all three rule-set timelines against ground
    /// truth (scoring only — the runs themselves are counted in the panel's
    /// own `alerts_panel` section).
    pub score_secs: f64,
    /// Scorecard for the built-in default rule set.
    pub default_card: AlertScorecard,
    /// Scorecard for the deliberately blunted `degraded` rule set.
    pub degraded_card: AlertScorecard,
    /// Scorecard for the trigger-happy `aggressive` rule set.
    pub aggressive_card: AlertScorecard,
}

impl AlertsStats {
    /// Renders the `alerts` value embedded in `BENCH_obs.json`: the scoring
    /// wall clock plus all three scorecards (each its own codec document,
    /// embedded verbatim).
    pub fn render_json(&self) -> String {
        format!(
            "{{\n  \"score_secs\": {:.6},\n  \"default\": {},\n  \"degraded\": {},\n  \
             \"aggressive\": {}\n  }}",
            self.score_secs,
            self.default_card.export_json().trim_end(),
            self.degraded_card.export_json().trim_end(),
            self.aggressive_card.export_json().trim_end(),
        )
    }
}

/// Alerting panel: the declarative rule engine evaluated in sim time during
/// the large fleet drill, scored for lead time against the injector's ground
/// truth, across all three built-in rule sets.
///
/// Asserts inline: (1) the heap and naive-scan runs produce byte-identical
/// alert timelines, (2) attaching rules leaves the rendered fleet report
/// byte-identical to a rules-off run (the timeline is its own document),
/// (3) the timeline and every scorecard are `import_json` fixed points,
/// (4) the default rules hit the acceptance bar — recall ≥ 0.9 with a
/// strictly positive median detection lead — and (5) the `degraded` variant
/// demonstrates the precision/recall trade-off (strictly lower recall,
/// strictly higher precision than default) while the `aggressive` variant
/// never loses coverage or precision-beats default and leaves at least as
/// many alerts unresolved.
///
/// Stdout carries only deterministic counts and sim-time-derived scores; the
/// scoring wall clock goes into the returned [`AlertsStats`] and
/// `BENCH_obs.json`.
pub fn alerts_panel() -> (String, AlertsStats) {
    let run = |rules: RuleSet| {
        FleetRunner::new(
            FleetConfig::large_drill().with_alert_rules(rules),
            SEED + 41,
        )
        .run()
    };
    let default_run = run(RuleSet::default_rules());

    // Oracle 1: the alert timeline is a pure function of the seed — the
    // retained naive-scan scheduler must reproduce it byte-for-byte.
    let naive = FleetRunner::new(
        FleetConfig::large_drill().with_alert_rules(RuleSet::default_rules()),
        SEED + 41,
    )
    .run_with(SchedulerKind::NaiveScan);
    let timeline_json = default_run.alerts.export_json();
    assert_eq!(
        timeline_json,
        naive.alerts.export_json(),
        "heap vs naive-scan alert timelines must be byte-identical"
    );

    // Oracle 2: attaching rules is invisible to the deterministic report.
    let bare = FleetRunner::new(FleetConfig::large_drill(), SEED + 41).run();
    assert_eq!(
        bare.render(),
        default_run.render(),
        "alert rules must not perturb the rendered fleet report"
    );

    // Oracle 3: the timeline export is a codec fixed point.
    let timeline_back = AlertTimeline::import_json(&timeline_json)
        .expect("the drill's own alert timeline must re-import");
    assert_eq!(
        timeline_back.export_json(),
        timeline_json,
        "alert timeline export must be a fixed point"
    );

    let degraded_run = run(RuleSet::degraded_rules());
    let aggressive_run = run(RuleSet::aggressive_rules());

    // Ground truth from the injector's own dossiers: every run shares the
    // seed, so the fault windows are identical across the three rule sets
    // (the default run's copy is authoritative).
    let faults = default_run.fault_windows();
    let (cards, score_secs) = timed(|| {
        [
            score_alerts(&default_run.alerts, &faults),
            score_alerts(&degraded_run.alerts, &faults),
            score_alerts(&aggressive_run.alerts, &faults),
        ]
    });
    let [default_card, degraded_card, aggressive_card] = cards;
    for card in [&default_card, &degraded_card, &aggressive_card] {
        let json = card.export_json();
        let back = AlertScorecard::import_json(&json).expect("own scorecard must re-import");
        assert_eq!(
            back.export_json(),
            json,
            "scorecard export must be a fixed point"
        );
    }

    // The acceptance bar: the default rules catch ≥ 90% of injected faults
    // and fire, in the median, strictly before the controller detects.
    assert!(
        default_card.recall >= 0.9,
        "default rules must cover >= 90% of faults (got {:.3})",
        default_card.recall
    );
    assert!(
        default_card.median_lead_secs > 0.0,
        "default rules must fire before detection in the median (got {:.0}s)",
        default_card.median_lead_secs
    );

    // The precision/recall trade-off, demonstrated by the blunted variant:
    // raising thresholds buys precision and pays for it in coverage.
    assert!(
        degraded_card.recall < default_card.recall,
        "degraded rules must lose coverage ({:.3} vs {:.3})",
        degraded_card.recall,
        default_card.recall
    );
    assert!(
        degraded_card.precision > default_card.precision,
        "degraded rules must gain precision ({:.3} vs {:.3})",
        degraded_card.precision,
        default_card.precision
    );
    // The trigger-happy variant moves the other way: coverage never drops,
    // precision never improves, and the long clear windows keep strictly
    // more alerts open at the end of the run.
    assert!(
        aggressive_card.recall >= default_card.recall,
        "aggressive rules must not lose coverage"
    );
    assert!(
        aggressive_card.precision <= default_card.precision,
        "aggressive rules must not beat default precision"
    );
    assert!(
        aggressive_card.unresolved >= default_card.unresolved,
        "aggressive clear windows must leave at least as many alerts open"
    );

    let mut table = Table::new(
        "Alerting panel: lead-time scoring on the large fleet drill",
        &[
            "Rule set",
            "Alerts",
            "Escalated",
            "Unresolved",
            "Recall",
            "Precision",
            "Median lead (s)",
            "Max lead (s)",
        ],
    );
    for card in [&default_card, &degraded_card, &aggressive_card] {
        table.row(&[
            card.rule_set.clone(),
            card.alerts.to_string(),
            card.escalated.to_string(),
            card.unresolved.to_string(),
            fmt_pct(card.recall),
            fmt_pct(card.precision),
            format!("{:.0}", card.median_lead_secs),
            format!("{:.0}", card.max_lead_secs),
        ]);
    }

    let stats = AlertsStats {
        score_secs,
        default_card,
        degraded_card,
        aggressive_card,
    };
    (
        format!(
            "{}\nAlerting oracles: heap/naive timelines byte-identical; rules-on report \
             byte-identical to rules-off; timeline and scorecards are import fixed points; \
             default recall >= 0.9 with positive median lead; degraded trades recall for \
             precision (all asserted over {} ground-truth fault(s))\n",
            table.render(),
            stats.default_card.faults,
        ),
        stats,
    )
}

/// The `large_drill` throughput benchmark: ~24 concurrent jobs over a
/// four-digit machine count, run once under the heap scheduler and once under
/// the retained naive-scan reference (same seed — the reports are pinned
/// byte-identical by the oracle test, so the comparison measures scheduling
/// cost alone). Returns a deterministic summary panel (safe for stdout — no
/// timing numbers) plus the measured [`FleetBenchStats`] backing
/// `BENCH_fleet.json`.
pub fn fleet_throughput() -> (String, FleetBenchStats) {
    /// Timed runs per scheduler; the best run is reported, which damps
    /// scheduler-noise jitter on sub-100ms measurements.
    const ROUNDS: usize = 3;
    let runner = FleetRunner::new(FleetConfig::large_drill(), SEED + 41);
    let (heap_report, heap_wall_secs) = (0..ROUNDS)
        .map(|_| timed(|| runner.run()))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one round");
    let (naive_report, naive_wall_secs) = (0..ROUNDS)
        .map(|_| timed(|| runner.run_with(SchedulerKind::NaiveScan)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one round");
    assert_eq!(
        heap_report.render(),
        naive_report.render(),
        "heap and naive-scan schedulers must agree byte-for-byte"
    );
    let stats = FleetBenchStats {
        seed: heap_report.seed,
        jobs: heap_report.jobs.len(),
        machines: runner.config().total_machines(),
        incidents: heap_report.total_incidents(),
        events: heap_report.events_processed,
        heap_wall_secs,
        naive_wall_secs,
    };

    let mut table = Table::new(
        "Fleet throughput: the large drill (heap scheduler, shared standby pool)",
        &["Quantity", "Value"],
    );
    table.row(&["Concurrent jobs".to_string(), stats.jobs.to_string()]);
    table.row(&["Fleet machines".to_string(), stats.machines.to_string()]);
    table.row(&["Incidents".to_string(), stats.incidents.to_string()]);
    table.row(&["Scheduler events".to_string(), stats.events.to_string()]);
    table.row(&[
        "Fleet ETTR".to_string(),
        format!("{:.4}", heap_report.fleet_ettr()),
    ]);
    table.row(&[
        "Repeat offenders".to_string(),
        heap_report.repeat_offenders.len().to_string(),
    ]);
    table.row(&[
        "Shared pool target (vs per-job sum)".to_string(),
        format!(
            "{} vs {}",
            heap_report.shared_pool_target, heap_report.solo_pool_sum
        ),
    ]);
    (table.render(), stats)
}

/// Everything the mega panel measured: the `BENCH_fleet.json` stats plus the
/// wall-clock self-profiling domain (scheduler op counters and the mega
/// warehouse's query-latency histograms) that `reproduce` merges into the
/// metrics registry in `BENCH_obs.json`.
#[derive(Debug, Clone)]
pub struct MegaStats {
    /// The measurement appended to `BENCH_fleet.json`.
    pub bench: MegaBenchStats,
    /// Scheduler op counters from the serial mega run.
    pub scheduler_ops: byterobust_fleet::SchedulerOps,
    /// Query-latency histogram over resident shards of the mega warehouse.
    pub query_hot: byterobust_obs::HistogramSnapshot,
    /// Query-latency histogram for queries that faulted spilled shards in
    /// (empty — the mega drill keeps every shard resident).
    pub query_faulted: byterobust_obs::HistogramSnapshot,
}

/// The mega-drill stepping benchmark: the 100×-scale fleet (600 jobs,
/// 52,224 machines, >1M events over 47 simulated days) run once under the
/// serial stepper — the determinism oracle — and once under the parallel
/// pre-advance stepper, asserted byte-identical. Fast mode substitutes
/// [`FleetConfig::mega_smoke`] (60 jobs, 5,120 machines, six days), the same
/// shapes and event mix at CI scale.
///
/// Returns a deterministic summary panel (safe for stdout — no timing
/// numbers) plus the measured [`MegaStats`]: events/sec and peak RSS for
/// `BENCH_fleet.json`, scheduler-op counters and warehouse query-latency
/// histograms for the registry in `BENCH_obs.json`.
pub fn mega_panel() -> (String, MegaStats) {
    let fast = fast_mode();
    let config = if fast {
        FleetConfig::mega_smoke()
    } else {
        FleetConfig::mega_drill()
    };
    let jobs = config.jobs.len();
    let machines = config.total_machines();
    let runner = FleetRunner::new(config, SEED + 99);
    let (serial_report, serial_wall_secs) =
        timed(|| runner.run_stepped(SchedulerKind::Heap, SteppingMode::Serial));
    // At least three workers even on a single-core host, so the pre-advance
    // fan-out (chunking, slot commit order) is genuinely exercised there too.
    let stepping_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(3);
    let (parallel_report, parallel_wall_secs) = timed(|| {
        runner.run_stepped(
            SchedulerKind::Heap,
            SteppingMode::Parallel {
                threads: stepping_threads,
            },
        )
    });
    assert_eq!(
        serial_report.render(),
        parallel_report.render(),
        "parallel stepping must be byte-identical to the serial oracle"
    );
    let peak_rss = crate::perf::peak_rss_bytes();

    // Point the warehouse latency histograms at the mega warehouse: the
    // canonical query mix over the full cross-job index.
    let warehouse = &serial_report.warehouse;
    let mega_queries = [
        IncidentQuery::any(),
        IncidentQuery::any().at_least(Severity::Sev2),
        IncidentQuery::any().window(SimTime::ZERO, SimTime::from_hours(48)),
    ];
    let mut hits = 0usize;
    for query in &mega_queries {
        hits += warehouse.query(query).len();
    }
    let (query_hot, query_faulted) = warehouse.query_latency();

    let stats = MegaStats {
        bench: MegaBenchStats {
            seed: serial_report.seed,
            fast_mode: fast,
            jobs,
            machines,
            incidents: serial_report.total_incidents(),
            events: serial_report.events_processed,
            serial_wall_secs,
            parallel_wall_secs,
            stepping_threads,
            peak_rss_bytes: peak_rss,
        },
        scheduler_ops: serial_report.scheduler_ops,
        query_hot,
        query_faulted,
    };

    let mut table = Table::new(
        "Mega drill: 100x fleet scale under the batched stepper (serial = parallel, asserted)",
        &["Quantity", "Value"],
    );
    table.row(&["Concurrent jobs".to_string(), jobs.to_string()]);
    table.row(&["Fleet machines".to_string(), machines.to_string()]);
    table.row(&["Incidents".to_string(), stats.bench.incidents.to_string()]);
    table.row(&[
        "Scheduler events".to_string(),
        stats.bench.events.to_string(),
    ]);
    table.row(&[
        "Fleet ETTR".to_string(),
        format!("{:.4}", serial_report.fleet_ettr()),
    ]);
    table.row(&[
        "Repeat offenders".to_string(),
        serial_report.repeat_offenders.len().to_string(),
    ]);
    table.row(&["Warehouse query hits".to_string(), hits.to_string()]);
    (table.render(), stats)
}

/// The resident query-plane benchmark: `large_drill` with a
/// [`WarehouseService`] attached, an open-loop synthetic stream (zipfian
/// over jobs and machines, mixed query shapes, deterministic seed) driven
/// by reader threads against the *live* service while the fleet executes.
///
/// Three oracles hold while it runs:
/// * **Live vs post-hoc** — sampled live answers record their epoch; after
///   the run the same queries replay against `snapshot_at(epoch)` and must
///   render byte-identical.
/// * **Planner vs linear scan** — sampled queries at the final epoch must
///   render byte-identical between the planner and the brute-force oracle.
/// * **Run determinism** — the drill's rendered report is byte-identical to
///   a run without any service attached (pinned by the integration tests).
///
/// Returns a deterministic summary panel (final-epoch answers only — no
/// timing, no planner mix, nothing that depends on reader interleaving)
/// plus the measured [`QueryBenchStats`] backing `BENCH_query.json`.
pub fn query_panel() -> (String, QueryBenchStats) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    let traffic_seed = SEED + 77;
    // The acceptance floor is >= 1M queries against the live service, in
    // fast mode too: the stream dominates this section's wall clock, so
    // shrinking the simulated drill (what fast mode does) barely helps.
    let queries: u64 = 1_000_000;
    /// Every `SAMPLE_EVERY`-th query is recorded live (with its serving
    /// epoch) and replayed post-hoc for the byte-identity oracle.
    const SAMPLE_EVERY: u64 = 10_000;

    // A tight spill budget forces cold shards onto disk mid-run, so the
    // readers fault segments through the LRU at warm-up and again every
    // time an epoch grows a spilled shard. The cache budget deliberately
    // exceeds the drill's total dossier count: scans walk every shard, and
    // a budget below that working set degenerates to a 100% miss rate
    // under cyclic access — disk IO per query, not a benchmark. Eviction
    // behaviour under starved budgets is pinned by the service unit tests
    // instead.
    let spill_dir = std::env::temp_dir().join(format!(
        "byterobust-query-panel-spill-{}",
        std::process::id()
    ));
    let service = WarehouseService::new(1 << 12);
    let config = FleetConfig::large_drill()
        .with_warehouse_storage(WarehouseStorage::new(96, &spill_dir))
        .with_query_service(service.clone());
    let runner = FleetRunner::new(config, SEED + 41);
    let labels: Vec<String> = runner
        .config()
        .jobs
        .iter()
        .map(|job| job.label.clone())
        .collect();
    let machines = runner.config().total_machines() as u32;
    let generator = TrafficGenerator::new(TrafficConfig::new(traffic_seed, labels, machines, 26));

    let reader_threads = 4;
    let next = AtomicU64::new(0);
    let samples: Mutex<Vec<(u64, u64, String)>> = Mutex::new(Vec::new());

    let ((report, stream_wall_secs), drill_wall_secs) = timed(|| {
        std::thread::scope(|scope| {
            let run = scope.spawn(|| runner.run());
            // Open-loop readers: pull the next stream index, answer it
            // against whatever epoch is latest. The stream is a pure
            // function of the index, so the queries asked are identical
            // regardless of which thread asks them or when.
            let (_, stream_secs) = timed(|| {
                std::thread::scope(|readers| {
                    for _ in 0..reader_threads {
                        readers.spawn(|| loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= queries {
                                break;
                            }
                            let query = generator.query(index);
                            let Some((response, epoch)) = service.answer(&query) else {
                                // Before epoch 0 is published; retry the
                                // same query until the runner catches up.
                                while service.answer(&query).is_none() {
                                    std::hint::spin_loop();
                                }
                                continue;
                            };
                            if index.is_multiple_of(SAMPLE_EVERY) {
                                samples.lock().expect("sample lock").push((
                                    index,
                                    epoch,
                                    response.render(),
                                ));
                            }
                        });
                    }
                })
            });
            (run.join().expect("drill run"), stream_secs)
        })
    });

    // Live-vs-post-hoc oracle: every sampled live answer must replay
    // byte-identically from its epoch's post-hoc snapshot.
    let samples = samples.into_inner().expect("sample lock");
    assert!(!samples.is_empty(), "stream recorded no samples");
    for (index, epoch, live) in &samples {
        let snapshot = service.snapshot_at(*epoch).expect("published epoch");
        let (replayed, _) = snapshot
            .answer(&generator.query(*index))
            .expect("warehouse-backed arm");
        assert_eq!(
            &replayed.render(),
            live,
            "post-hoc replay of query {index} diverged from its live answer at epoch {epoch}"
        );
    }

    // Planner-vs-oracle at the final epoch, over a fresh sample of the
    // stream (different indices than the live samples, deliberately).
    let last = service.latest().expect("sealed run has epochs");
    for index in (0..queries).step_by((SAMPLE_EVERY + 13) as usize) {
        let query = generator.query(index);
        let (planned, _) = last.answer(&query).expect("warehouse-backed arm");
        let oracle = last.oracle_answer(&query).expect("warehouse-backed arm");
        assert_eq!(
            planned.render(),
            oracle.render(),
            "planner diverged from the linear-scan oracle on query {index}"
        );
    }

    let stats_snapshot = service.stats();
    let stats = QueryBenchStats {
        seed: report.seed,
        traffic_seed,
        queries,
        reader_threads,
        epochs: stats_snapshot.epochs,
        stream_wall_secs,
        drill_wall_secs,
        p50_nanos: stats_snapshot.latency.quantile(0.50),
        p99_nanos: stats_snapshot.latency.quantile(0.99),
        plans: stats_snapshot
            .plans
            .iter()
            .map(|(label, count)| (label.to_string(), *count))
            .collect(),
        cache_hits: stats_snapshot.cache.hits,
        cache_faults: stats_snapshot.cache.faults,
        cache_evictions: stats_snapshot.cache.evictions,
    };

    // The deterministic panel: final-epoch answers only. Every number here
    // is a pure function of the fleet seed (and the fast/full mode's query
    // count), independent of reader timing.
    let mut table = Table::new(
        "Query plane: snapshot-isolated reads under open-loop traffic (large drill)",
        &["Quantity", "Value"],
    );
    table.row(&["Concurrent jobs".to_string(), report.jobs.len().to_string()]);
    table.row(&[
        "Incidents".to_string(),
        report.total_incidents().to_string(),
    ]);
    table.row(&[
        "Epochs published".to_string(),
        stats_snapshot.epochs.to_string(),
    ]);
    table.row(&["Synthetic queries".to_string(), queries.to_string()]);
    let digest = match report.answer(&FleetQuery::Digest) {
        QueryResponse::Digest(digest) => digest,
        other => panic!("digest arm answered {other:?}"),
    };
    table.row(&["Warehouse total".to_string(), digest.total.to_string()]);
    for (severity, count) in &digest.severity {
        table.row(&[format!("Severity {}", severity.label()), count.to_string()]);
    }
    let final_probe = FleetQuery::Incidents(IncidentQuery::any().at_least(Severity::ALL[2]));
    let (hits, _) = last.answer(&final_probe).expect("warehouse-backed arm");
    let hit_count = match &hits {
        QueryResponse::Incidents(rows) => rows.len(),
        other => panic!("incidents arm answered {other:?}"),
    };
    table.row(&[
        format!("Hits at >= {}", Severity::ALL[2].label()),
        hit_count.to_string(),
    ]);
    let _ = std::fs::remove_dir_all(&spill_dir);
    (table.render(), stats)
}

/// Fig. 7: stack aggregation for a backward-communication hang.
pub fn analyzer_aggregation() -> String {
    let job = JobSpec {
        parallelism: ParallelismConfig::fig7_example(),
        ..JobSpec::small_test()
    };
    let mut runtime = TrainingRuntime::new(job);
    runtime.inject_hang(vec![MachineId(15)]);
    let stacks = runtime.capture_stacks();
    let aggregation = AggregationResult::aggregate(&stacks);
    let decision =
        EvictionDecision::from_outliers(runtime.topology(), &aggregation.outlier_ranks());

    let mut table = Table::new(
        "Fig. 7: stack aggregation for a backward-communication hang (TP=2, PP=4, DP=4)",
        &["Cluster", "Process", "Size (ranks)", "Innermost frame"],
    );
    for (i, cluster) in aggregation.clusters.iter().enumerate() {
        if cluster.process != byterobust_trainsim::ProcessKind::Trainer {
            continue;
        }
        let label = if aggregation.is_dominant(cluster) {
            format!("Inlier #{i}")
        } else {
            format!("Outlier #{i}")
        };
        let leaf = cluster.fingerprint.lines().last().unwrap_or("").to_string();
        table.row(&[
            label,
            "Trainer".to_string(),
            cluster.size().to_string(),
            leaf,
        ]);
    }
    let machines: Vec<String> = decision.machines.iter().map(|m| m.to_string()).collect();
    format!(
        "{}\nIsolated suspected machines ({:?} group over-eviction): {}\n",
        table.render(),
        decision.shared_group,
        machines.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Transition pin for the Table 1 migration: the tables now render from
    /// [`IncidentStore`] queries, and this test reproduces the historical
    /// raw-record fold verbatim and requires the rendered document to be
    /// byte-identical. Delete once the store-backed path has shipped a while.
    #[test]
    fn table1_store_migration_is_byte_identical_to_the_raw_fold() {
        let config = FaultInjectorConfig::default();
        let mut injector = FaultInjector::new(config, SimRng::new(SEED));
        let samples = if fast_mode() { 10_000 } else { 40_000 };
        let mut now = SimTime::ZERO;
        let mut counts: BTreeMap<FaultKind, usize> = BTreeMap::new();
        let mut root_causes: BTreeMap<FaultKind, (usize, usize)> = BTreeMap::new();
        for _ in 0..samples {
            let event = injector.next_event(now);
            now = event.at;
            *counts.entry(event.kind).or_insert(0) += 1;
            let entry = root_causes.entry(event.kind).or_insert((0, 0));
            match event.root_cause {
                RootCause::Infrastructure | RootCause::Transient => entry.0 += 1,
                RootCause::UserCode => entry.1 += 1,
                RootCause::Human => {}
            }
        }

        let mut table = Table::new(
            "Table 1: distribution of training incidents (simulated production mix)",
            &[
                "Category",
                "Incident Symptom",
                "Count",
                "Percentage",
                "Paper %",
            ],
        );
        for kind in FaultKind::ALL {
            let count = counts.get(&kind).copied().unwrap_or(0);
            let category = match kind.category() {
                FaultCategory::Explicit => "Explicit",
                FaultCategory::Implicit => "Implicit",
                FaultCategory::ManualRestart => "Manual Restart",
            };
            table.row(&[
                category.to_string(),
                kind.symptom_name().to_string(),
                count.to_string(),
                fmt_pct(count as f64 / samples as f64),
                format!("{:.1}%", kind.table1_weight()),
            ]);
        }

        let mut table2 = Table::new(
            "Table 2: root cause of incidents (symptoms with tangled causes)",
            &["Symptom", "#Infrastructure", "#User Code", "#Total"],
        );
        for kind in [
            FaultKind::JobHang,
            FaultKind::GpuMemoryError,
            FaultKind::NanValue,
        ] {
            let (infra, user) = root_causes.get(&kind).copied().unwrap_or((0, 0));
            table2.row(&[
                kind.symptom_name().to_string(),
                infra.to_string(),
                user.to_string(),
                (infra + user).to_string(),
            ]);
        }
        let legacy = format!("{}\n{}", table.render(), table2.render());

        assert_eq!(
            table1_incidents(),
            legacy,
            "store-backed Table 1/2 must render byte-identically to the raw fold"
        );
    }

    /// Transition pin for the Fig. 3 migration: the figure now renders from
    /// a warehouse query served by the resident query plane, and this test
    /// reproduces the historical raw-record fold
    /// ([`JobReport::unproductive_breakdown`]) verbatim and requires the
    /// rendered document to be byte-identical. Delete once the query-backed
    /// path has shipped a while.
    #[test]
    fn fig3_query_migration_is_byte_identical_to_the_raw_fold() {
        let (dense, _) = production_reports();

        let mut table = Table::new(
            "Fig. 3: unproductive time breakdown (mean seconds per incident)",
            &["Category", "Detection", "Localization", "Failover", "Total"],
        );
        for (category, (d, l, f)) in dense.unproductive_breakdown() {
            table.row(&[
                category.to_string(),
                fmt_secs(d),
                fmt_secs(l),
                fmt_secs(f),
                fmt_secs(d + l + f),
            ]);
        }
        let legacy = table.render();

        assert_eq!(
            fig3_unproductive(&dense),
            legacy,
            "query-backed Fig. 3 must render byte-identically to the raw fold"
        );
    }
}
