//! Minimal fixed-width table rendering for experiment output.

/// A simple text table with a title, a header row and data rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row; its length must match the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for rows of string slices.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as fixed-width text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds with a sensible precision.
pub fn fmt_secs(secs: f64) -> String {
    if secs.is_infinite() {
        "INF".to_string()
    } else if secs < 1.0 {
        format!("{secs:.2}")
    } else if secs < 100.0 {
        format!("{secs:.1}")
    } else {
        format!("{secs:.0}")
    }
}

/// Formats a ratio as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row_str(&["a", "1"]).row_str(&["longer-name", "2"]);
        let out = t.render();
        assert!(out.contains("== Demo =="));
        assert!(out.contains("longer-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row_str(&["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.5), "0.50");
        assert_eq!(fmt_secs(42.25), "42.2");
        assert_eq!(fmt_secs(500.9), "501");
        assert_eq!(fmt_secs(f64::INFINITY), "INF");
        assert_eq!(fmt_pct(0.973), "97.3%");
    }
}
