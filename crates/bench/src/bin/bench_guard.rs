//! CI perf-regression gate.
//!
//! ```text
//! bench_guard <BENCH_reproduce.json> <ci/bench_budget.json>            # enforce
//! bench_guard --strict <BENCH_reproduce.json> <ci/bench_budget.json>  # + unguarded = failure
//! bench_guard --update <BENCH_reproduce.json> <ci/bench_budget.json>  # rewrite budget
//! ```
//!
//! Enforcement reads the measured `total_wall_secs` and per-section
//! `wall_secs` from a `BENCH_reproduce.json` produced by the `reproduce`
//! binary and compares them against the checked-in budget
//! (`reproduce_fast_budget_secs` plus per-section `budget_secs` in
//! `ci/bench_budget.json`). The job fails when the total — or any budgeted
//! section — exceeds twice its budget, and the failure report names each
//! offending section with its budget, its measurement, and how far over it
//! is, instead of a bare exit code. The 2× factor absorbs runner-hardware
//! variance while still catching complexity regressions.
//!
//! Measured sections *absent from the budget file* do not fail the gate by
//! default (a budget refresh is a deliberate, reviewed step) but are reported
//! as a warning naming each unguarded section, so a newly added panel cannot
//! silently dodge regression coverage. Under `--strict` — what CI runs —
//! that warning becomes a failure: every measured section must carry a
//! budget entry before the gate passes.
//!
//! `--update` rewrites the budget file from the current measurement (totals
//! and sections alike), for deliberate budget refreshes after intentional
//! perf changes — never run it to paper over a regression.

use std::fmt::Write as _;
use std::process::ExitCode;

use byterobust_bench::perf::{read_json_name_number_pairs, read_json_number};

/// Allowed slowdown over a budget before the gate trips.
const REGRESSION_FACTOR: f64 = 2.0;

/// Budgets below this are noise; `--update` clamps up to it so a 2 ms
/// section cannot trip the gate on a 5 ms measurement.
const MIN_BUDGET_SECS: f64 = 0.05;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_guard [--update | --strict] <BENCH_reproduce.json> <bench_budget.json>"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut update = false;
    let mut strict = false;
    while let Some(flag) = args.first().map(String::as_str) {
        match flag {
            "--update" => update = true,
            "--strict" => strict = true,
            _ => break,
        }
        args.remove(0);
    }
    let [results_path, budget_path] = args.as_slice() else {
        return usage();
    };

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(contents) => Some(contents),
        Err(err) => {
            eprintln!("bench_guard: cannot read {path}: {err}");
            None
        }
    };
    let Some(results) = read(results_path) else {
        return ExitCode::FAILURE;
    };
    let Some(measured_total) = read_json_number(&results, "total_wall_secs") else {
        eprintln!("bench_guard: {results_path} has no numeric total_wall_secs");
        return ExitCode::FAILURE;
    };
    let measured_sections = read_json_name_number_pairs(&results, "wall_secs");

    if update {
        let budget = render_budget(measured_total, &measured_sections);
        return match std::fs::write(budget_path, budget) {
            Ok(()) => {
                println!(
                    "bench_guard: wrote {budget_path} from {results_path} \
                     (total {measured_total:.2}s, {} sections)",
                    measured_sections.len()
                );
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("bench_guard: cannot write {budget_path}: {err}");
                ExitCode::FAILURE
            }
        };
    }

    let Some(budget) = read(budget_path) else {
        return ExitCode::FAILURE;
    };
    let Some(allowed_total) = read_json_number(&budget, "reproduce_fast_budget_secs") else {
        eprintln!("bench_guard: {budget_path} has no numeric reproduce_fast_budget_secs");
        return ExitCode::FAILURE;
    };
    let section_budgets = read_json_name_number_pairs(&budget, "budget_secs");

    // Compare every budgeted quantity; collect the offenders.
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    fn check(
        rows: &mut Vec<String>,
        failures: &mut Vec<String>,
        name: &str,
        measured: f64,
        budget: f64,
    ) {
        let limit = budget * REGRESSION_FACTOR;
        let over = measured > limit;
        let pct_of_budget = 100.0 * measured / budget.max(1e-9);
        rows.push(format!(
            "  {:<24} budget {:>7.2}s  measured {:>7.2}s  ({:>4.0}% of budget){}",
            name,
            budget,
            measured,
            pct_of_budget,
            if over { "  << OVER 2x LIMIT" } else { "" }
        ));
        if over {
            failures.push(format!(
                "{name}: {measured:.2}s is {:.0}% over its {budget:.2}s budget (limit {limit:.2}s)",
                pct_of_budget - 100.0
            ));
        }
    }
    check(
        &mut rows,
        &mut failures,
        "total",
        measured_total,
        allowed_total,
    );
    for (name, budget_secs) in &section_budgets {
        match measured_sections.iter().find(|(n, _)| n == name) {
            Some((_, measured)) => check(&mut rows, &mut failures, name, *measured, *budget_secs),
            None => {
                // A budgeted section vanishing from the results is a gate
                // failure, not a footnote: otherwise renaming a section
                // silently drops its regression coverage.
                rows.push(format!(
                    "  {name:<24} budget {budget_secs:>7.2}s  measured      -    << MISSING FROM RESULTS"
                ));
                failures.push(format!(
                    "{name}: budgeted section missing from results — renamed or dropped? \
                     Run bench_guard --update to adopt the new section list deliberately"
                ));
            }
        }
    }
    // Measured sections with no budget entry cannot regress-gate anything: a
    // newly added panel would silently dodge the guard. A loud warning that
    // names every unguarded section by default; a gate failure under
    // `--strict` (CI), where the budget must cover every measured section.
    let unknown: Vec<&str> = measured_sections
        .iter()
        .map(|(name, _)| name.as_str())
        .filter(|name| !section_budgets.iter().any(|(n, _)| n == name))
        .collect();
    for name in &unknown {
        rows.push(format!(
            "  {name:<24} (no budget recorded — run bench_guard --update to adopt it)"
        ));
        if strict {
            failures.push(format!(
                "{name}: measured section has no budget entry (--strict). Run bench_guard \
                 --update to adopt it deliberately"
            ));
        }
    }

    let mut report = String::new();
    let _ = writeln!(
        report,
        "bench_guard: current run vs {budget_path} (gate trips at {REGRESSION_FACTOR}x budget)"
    );
    for row in rows {
        let _ = writeln!(report, "{row}");
    }
    if !unknown.is_empty() && !strict {
        eprintln!(
            "bench_guard: WARNING — {} measured section(s) have no budget entry and are NOT \
             regression-guarded: {}. Run `bench_guard --update {results_path} {budget_path}` to \
             adopt them deliberately.",
            unknown.len(),
            unknown.join(", ")
        );
    }
    if failures.is_empty() {
        print!("{report}");
        println!("bench_guard: OK — total {measured_total:.2}s within budget");
        ExitCode::SUCCESS
    } else {
        eprint!("{report}");
        eprintln!(
            "bench_guard: FAIL — {} regression(s). Either a perf regression slipped in or the \
             budget needs a deliberate `bench_guard --update` with a justification:",
            failures.len()
        );
        for failure in failures {
            eprintln!("  {failure}");
        }
        ExitCode::FAILURE
    }
}

/// Renders a fresh `ci/bench_budget.json` from the current measurement.
fn render_budget(total: f64, sections: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"comment\": \"Wall-clock budgets for `BYTEROBUST_FAST=1 reproduce` on CI hardware, \
         in seconds. bench_guard fails the bench-smoke job when the measured total_wall_secs — \
         or any budgeted section — in BENCH_reproduce.json exceeds 2x its budget. Regenerate \
         deliberately with `bench_guard --update BENCH_reproduce.json ci/bench_budget.json` \
         (with a perf justification in the PR) — never to paper over a regression.\","
    );
    let _ = writeln!(
        out,
        "  \"reproduce_fast_budget_secs\": {:.2},",
        total.max(MIN_BUDGET_SECS)
    );
    out.push_str("  \"sections\": [\n");
    for (i, (name, secs)) in sections.iter().enumerate() {
        let comma = if i + 1 == sections.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{name}\", \"budget_secs\": {:.2}}}{comma}",
            secs.max(MIN_BUDGET_SECS)
        );
    }
    out.push_str("  ]\n}\n");
    out
}
