//! CI perf-regression gate.
//!
//! ```text
//! bench_guard <BENCH_reproduce.json> <ci/bench_budget.json>
//! ```
//!
//! Reads the measured `total_wall_secs` from a `BENCH_reproduce.json`
//! produced by the `reproduce` binary and compares it against the checked-in
//! budget (`reproduce_fast_budget_secs` in `ci/bench_budget.json`). Exits
//! non-zero — failing the CI job — when the measured wall clock exceeds
//! twice the budget, i.e. when `reproduce` regressed more than 2× against
//! the recorded expectation. The factor absorbs runner-hardware variance
//! while still catching complexity regressions (the O(J·E) scan this PR
//! removed would trip it many times over at fleet scale).

use std::process::ExitCode;

use byterobust_bench::perf::read_json_number;

/// Allowed slowdown over the budget before the gate trips.
const REGRESSION_FACTOR: f64 = 2.0;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(results_path), Some(budget_path)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_guard <BENCH_reproduce.json> <bench_budget.json>");
        return ExitCode::FAILURE;
    };

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(contents) => Some(contents),
        Err(err) => {
            eprintln!("bench_guard: cannot read {path}: {err}");
            None
        }
    };
    let (Some(results), Some(budget)) = (read(&results_path), read(&budget_path)) else {
        return ExitCode::FAILURE;
    };

    let Some(measured) = read_json_number(&results, "total_wall_secs") else {
        eprintln!("bench_guard: {results_path} has no numeric total_wall_secs");
        return ExitCode::FAILURE;
    };
    let Some(allowed) = read_json_number(&budget, "reproduce_fast_budget_secs") else {
        eprintln!("bench_guard: {budget_path} has no numeric reproduce_fast_budget_secs");
        return ExitCode::FAILURE;
    };

    let limit = allowed * REGRESSION_FACTOR;
    if measured > limit {
        eprintln!(
            "bench_guard: FAIL — reproduce took {measured:.2}s, over {REGRESSION_FACTOR}x the \
             {allowed:.2}s budget ({limit:.2}s limit). Either a perf regression slipped in or the \
             budget in {budget_path} needs a deliberate update."
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_guard: OK — reproduce took {measured:.2}s (budget {allowed:.2}s, limit {limit:.2}s)"
    );
    ExitCode::SUCCESS
}
