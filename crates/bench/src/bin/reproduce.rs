//! Regenerates every table and figure of the paper's evaluation in one pass.
//!
//! ```text
//! cargo run --release -p byterobust-bench --bin reproduce
//! BYTEROBUST_FAST=1 cargo run --release -p byterobust-bench --bin reproduce   # shorter simulated durations
//! ```

use byterobust_bench::experiments;

fn main() {
    println!("ByteRobust reproduction — regenerating all tables and figures");
    println!(
        "(seed = {}, fast mode = {})\n",
        experiments::SEED,
        byterobust_bench::fast_mode()
    );

    // Cheap, closed-form experiments first.
    println!("{}", experiments::table1_incidents());
    println!("{}", experiments::table3_detection());
    println!("{}", experiments::table7_hot_update());
    println!("{}", experiments::fig12_was());
    println!("{}", experiments::table8_checkpoint());
    println!("{}", experiments::replay_localization());
    println!("{}", experiments::analyzer_aggregation());

    // The 1,000-GPU 10-day job of Fig. 2.
    println!("{}", experiments::fig2_loss_mfu());

    // Fleet orchestration: concurrent jobs over a shared standby pool.
    eprintln!("running the fleet drill (3 concurrent jobs, shared standbys)...");
    println!("{}", experiments::fleet_panel());

    // The two production deployment jobs of §8.1 drive the remaining tables.
    eprintln!("running production deployment simulations (dense 3-month + MoE 1-month)...");
    let (dense, moe) = experiments::production_reports();
    println!("{}", experiments::fig3_unproductive(&dense));
    println!("{}", experiments::table4_resolution(&dense, &moe));
    println!("{}", experiments::table6_resolution_cost(&dense, &moe));
    println!("{}", experiments::fig10_ettr(&dense, &moe));
    println!("{}", experiments::fig11_mfu(&dense, &moe));
}
