//! Regenerates every table and figure of the paper's evaluation in one pass,
//! and records the perf trajectory of the run itself.
//!
//! ```text
//! cargo run --release -p byterobust-bench --bin reproduce
//! BYTEROBUST_FAST=1 cargo run --release -p byterobust-bench --bin reproduce     # shorter simulated durations
//! BYTEROBUST_SERIAL=1 cargo run --release -p byterobust-bench --bin reproduce   # force single-threaded
//! BYTEROBUST_PARALLEL=1 cargo run --release -p byterobust-bench --bin reproduce # force the thread fan-out
//! ```
//!
//! On multi-core hosts (the default policy — see
//! `byterobust_bench::parallel_harness`) the heavy, mutually independent
//! simulations (Fig. 2, the fleet drills, and the two §8.1 production
//! deployments) run on `std::thread::scope` threads; each owns its seed, so
//! stdout is byte-identical to a `BYTEROBUST_SERIAL=1` run — only the wall
//! clock changes. Sections are printed in the fixed document order
//! regardless of completion order.
//!
//! Four machine-readable artifacts are written afterwards (into
//! `$BYTEROBUST_BENCH_DIR`, default `.`): `BENCH_reproduce.json` with
//! per-section and total wall times, `BENCH_fleet.json` with the
//! `large_drill` scheduler-throughput measurement plus the `mega_panel`
//! stats (mega-drill events/sec, serial + parallel stepping walls, peak
//! RSS — the `mega_*` keys), `BENCH_obs.json`
//! with the observability plane's self-profiling (trace codec timings, the
//! alerting plane's lead-time scorecards, plus the full wall-clock metrics
//! registry), and `BENCH_query.json` with the resident query plane's
//! open-loop throughput and latency quantiles. `ci/bench_budget.json` + the
//! `bench_guard` binary turn the first into a CI regression gate.
//!
//! Setting `BYTEROBUST_PERSIST_DIR=<dir>` additionally writes the incident
//! warehouse's persistence artifacts there (`warehouse.json` plus the
//! original and re-imported digests, asserted byte-identical in-panel) —
//! the `bench-smoke` CI job sets it and uploads them alongside the bench
//! JSON. The `persistence-roundtrip` CI job exercises the same round trip
//! through `examples/fleet_drill.rs` (`BYTEROBUST_EXPORT_DIR`) and diffs
//! the digests itself.

use byterobust_bench::experiments;
use byterobust_bench::perf::{timed, ObsBenchStats, PerfRecorder};

fn main() {
    let run_start = std::time::Instant::now();
    let fast = byterobust_bench::fast_mode();
    let serial = !byterobust_bench::parallel_harness();
    println!("ByteRobust reproduction — regenerating all tables and figures");
    println!("(seed = {}, fast mode = {})\n", experiments::SEED, fast);
    // The parallel/serial choice must not leak into stdout: the document is
    // byte-identical either way (pinned by the bench determinism tests).
    eprintln!("harness: parallel = {}", !serial);

    let mut perf = PerfRecorder::new();

    // The heavy simulations are independent (each owns its forked seed), so
    // they run concurrently with the cheap closed-form sections and with each
    // other; printing happens in document order below.
    let (cheap, fig2, fleet_panel, broker_panel, persistence, obs, alerts, production) =
        std::thread::scope(|scope| {
            let spawn_or_inline = |f: fn() -> String| {
                if serial {
                    None
                } else {
                    Some(scope.spawn(move || timed(f)))
                }
            };
            let fig2 = spawn_or_inline(experiments::fig2_loss_mfu);
            let fleet_panel = spawn_or_inline(experiments::fleet_panel);
            let broker_panel = spawn_or_inline(experiments::broker_panel);
            let persistence = if serial {
                None
            } else {
                Some(scope.spawn(|| timed(experiments::persistence_panel)))
            };
            let obs = if serial {
                None
            } else {
                Some(scope.spawn(|| timed(experiments::obs_panel)))
            };
            let alerts = if serial {
                None
            } else {
                Some(scope.spawn(|| timed(experiments::alerts_panel)))
            };
            let production = if serial {
                None
            } else {
                Some(scope.spawn(|| timed(experiments::production_reports)))
            };

            // Cheap, closed-form experiments on the main thread.
            let cheap: Vec<(&str, (String, f64))> = vec![
                ("table1_incidents", timed(experiments::table1_incidents)),
                ("table3_detection", timed(experiments::table3_detection)),
                ("table7_hot_update", timed(experiments::table7_hot_update)),
                ("fig12_was", timed(experiments::fig12_was)),
                ("table8_checkpoint", timed(experiments::table8_checkpoint)),
                (
                    "replay_localization",
                    timed(experiments::replay_localization),
                ),
                (
                    "analyzer_aggregation",
                    timed(experiments::analyzer_aggregation),
                ),
            ];

            let join = |handle: Option<std::thread::ScopedJoinHandle<'_, (String, f64)>>,
                        f: fn() -> String| {
                match handle {
                    Some(handle) => handle.join().expect("experiment thread panicked"),
                    None => timed(f),
                }
            };
            let fig2 = join(fig2, experiments::fig2_loss_mfu);
            let fleet_panel = join(fleet_panel, experiments::fleet_panel);
            let broker_panel = join(broker_panel, experiments::broker_panel);
            let persistence = match persistence {
                Some(handle) => handle.join().expect("experiment thread panicked"),
                None => timed(experiments::persistence_panel),
            };
            let obs = match obs {
                Some(handle) => handle.join().expect("experiment thread panicked"),
                None => timed(experiments::obs_panel),
            };
            let alerts = match alerts {
                Some(handle) => handle.join().expect("experiment thread panicked"),
                None => timed(experiments::alerts_panel),
            };
            let production = match production {
                Some(handle) => handle.join().expect("experiment thread panicked"),
                None => timed(experiments::production_reports),
            };
            (
                cheap,
                fig2,
                fleet_panel,
                broker_panel,
                persistence,
                obs,
                alerts,
                production,
            )
        });

    // The scheduler-throughput measurement runs alone on the main thread,
    // after every worker has joined, so the heap-vs-naive comparison is not
    // skewed by concurrent load.
    let ((throughput_panel, fleet_stats), throughput_secs) = timed(experiments::fleet_throughput);

    for (name, (rendered, secs)) in &cheap {
        println!("{rendered}");
        perf.record(name, *secs);
    }

    // The 1,000-GPU 10-day job of Fig. 2.
    println!("{}", fig2.0);
    perf.record("fig2_loss_mfu", fig2.1);

    // Fleet orchestration: concurrent jobs over a shared standby pool.
    println!("{}", fleet_panel.0);
    perf.record("fleet_panel", fleet_panel.1);

    // Fleet resource broker: the starved drill, broker off vs on, plus the
    // non-starved byte-identity oracle (asserted inside the panel).
    println!("{}", broker_panel.0);
    perf.record("broker_panel", broker_panel.1);

    // Warehouse persistence: export→import→render and disk-spill round
    // trips (oracles asserted inside the panel). The deterministic panel
    // goes to stdout; the export/import/cold-query wall clocks go to the
    // JSON only, as their own guarded sections.
    let ((persistence_text, persistence_stats), persistence_secs) = persistence;
    println!("{persistence_text}");
    perf.record("persistence_panel", persistence_secs);
    perf.record("persistence_export", persistence_stats.export_secs);
    perf.record("persistence_import", persistence_stats.import_secs);
    perf.record("persistence_cold_query", persistence_stats.cold_query_secs);
    perf.record("persistence_hot_query", persistence_stats.hot_query_secs);

    // Observability: sim-time tracing determinism oracles, cause-chain
    // conformance against the incident store, and the wall-clock metrics
    // registry (asserted inside the panel). The deterministic panel goes to
    // stdout; the trace codec wall clocks become their own guarded sections
    // and the registry becomes `BENCH_obs.json`.
    let ((obs_text, obs_stats), obs_secs) = obs;
    println!("{obs_text}");
    perf.record("obs_panel", obs_secs);
    perf.record("obs_trace_export", obs_stats.trace_export_secs);
    perf.record("obs_trace_import", obs_stats.trace_import_secs);
    perf.record("obs_trace_diagnose", obs_stats.trace_diagnose_secs);

    // Alerting: the declarative rule engine on the large drill, scored for
    // lead time against ground truth across all three built-in rule sets
    // (determinism and trade-off oracles asserted inside the panel). The
    // deterministic panel goes to stdout; the scoring wall clock becomes its
    // own guarded section and the scorecards land in `BENCH_obs.json`.
    let ((alerts_text, alerts_stats), alerts_secs) = alerts;
    println!("{alerts_text}");
    perf.record("alerts_panel", alerts_secs);
    perf.record("alerts_score", alerts_stats.score_secs);

    // Fleet scale-out: the large drill under the heap scheduler. The panel is
    // deterministic; the measured throughput goes to stderr and the JSON.
    println!("{throughput_panel}");
    perf.record("fleet_large_drill", throughput_secs);
    eprintln!(
        "large drill: {} events in {:.2}s ({:.0} events/sec, {:.2}x over the naive scan)",
        fleet_stats.events,
        fleet_stats.heap_wall_secs,
        fleet_stats.events_per_sec(),
        fleet_stats.scheduler_speedup(),
    );

    // The resident query plane: large drill re-run with a live
    // WarehouseService attached and an open-loop synthetic query stream
    // hammering it from reader threads (live-vs-post-hoc and
    // planner-vs-oracle byte-identity asserted inside the panel). It runs
    // alone on the main thread like the throughput measurement so its
    // latency quantiles are not skewed by concurrent sections. The panel
    // is deterministic; throughput and latency go to stderr and
    // `BENCH_query.json`.
    let ((query_panel_text, query_stats), query_panel_secs) = timed(experiments::query_panel);
    println!("{query_panel_text}");
    perf.record("query_panel", query_panel_secs);
    eprintln!(
        "query plane: {} queries in {:.2}s ({:.0} queries/sec, p50 = {} ns, p99 = {} ns)",
        query_stats.queries,
        query_stats.stream_wall_secs,
        query_stats.queries_per_sec(),
        query_stats.p50_nanos,
        query_stats.p99_nanos,
    );

    // The mega drill: 100x fleet scale under the batched stepper, serial
    // oracle vs parallel pre-advance (byte-identity asserted inside the
    // panel). It runs alone on the main thread — it is the largest single
    // allocation and wall-clock item, so nothing may skew it. The panel is
    // deterministic; walls, events/sec, and peak RSS go to stderr,
    // `BENCH_fleet.json`, and the guarded sections.
    let ((mega_text, mega_stats), mega_secs) = timed(experiments::mega_panel);
    println!("{mega_text}");
    perf.record("mega_panel", mega_secs);
    perf.record("mega_serial", mega_stats.bench.serial_wall_secs);
    perf.record("mega_parallel", mega_stats.bench.parallel_wall_secs);
    eprintln!(
        "mega drill: {} events in {:.2}s serial / {:.2}s parallel x{} \
         ({:.0} events/sec, peak RSS {} MiB)",
        mega_stats.bench.events,
        mega_stats.bench.serial_wall_secs,
        mega_stats.bench.parallel_wall_secs,
        mega_stats.bench.stepping_threads,
        mega_stats.bench.events_per_sec(),
        mega_stats.bench.peak_rss_bytes >> 20,
    );

    // The two production deployment jobs of §8.1 drive the remaining tables.
    let ((dense, moe), production_secs) = production;
    perf.record("production_reports", production_secs);
    let (fig3, fig3_secs) = timed(|| experiments::fig3_unproductive(&dense));
    println!("{fig3}");
    perf.record("fig3_unproductive", fig3_secs);
    let (table4, table4_secs) = timed(|| experiments::table4_resolution(&dense, &moe));
    println!("{table4}");
    perf.record("table4_resolution", table4_secs);
    let (table6, table6_secs) = timed(|| experiments::table6_resolution_cost(&dense, &moe));
    println!("{table6}");
    perf.record("table6_resolution_cost", table6_secs);
    let (fig10, fig10_secs) = timed(|| experiments::fig10_ettr(&dense, &moe));
    println!("{fig10}");
    perf.record("fig10_ettr", fig10_secs);
    let (fig11, fig11_secs) = timed(|| experiments::fig11_mfu(&dense, &moe));
    println!("{fig11}");
    perf.record("fig11_mfu", fig11_secs);

    let total = run_start.elapsed().as_secs_f64();
    match perf.write_reproduce_json(fast, !serial, total) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write BENCH_reproduce.json: {err}"),
    }
    match fleet_stats.write_fleet_json(Some(&mega_stats.bench)) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write BENCH_fleet.json: {err}"),
    }
    // Merge the mega drill's self-profiling into the registry: its scheduler
    // op counters and its warehouse query-latency histograms sit alongside
    // the small drill's under their own names.
    let mut registry = obs_stats.registry;
    registry.set_counter("scheduler.mega.picks", mega_stats.scheduler_ops.picks);
    registry.set_counter(
        "scheduler.mega.pushes",
        mega_stats.scheduler_ops.heap_pushes,
    );
    registry.set_counter(
        "scheduler.mega.stale_drops",
        mega_stats.scheduler_ops.stale_drops,
    );
    registry.set_counter(
        "scheduler.mega.tie_draws",
        mega_stats.scheduler_ops.tie_draws,
    );
    registry.set_histogram("warehouse.mega_query_hot_nanos", mega_stats.query_hot);
    registry.set_histogram(
        "warehouse.mega_query_faulted_nanos",
        mega_stats.query_faulted,
    );
    let obs_bench = ObsBenchStats {
        trace_export_secs: obs_stats.trace_export_secs,
        trace_import_secs: obs_stats.trace_import_secs,
        trace_diagnose_secs: obs_stats.trace_diagnose_secs,
        alerts_json: alerts_stats.render_json(),
        metrics_json: registry.export_json(),
    };
    match obs_bench.write_obs_json() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write BENCH_obs.json: {err}"),
    }
    match query_stats.write_query_json() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write BENCH_query.json: {err}"),
    }
    eprintln!("reproduce finished in {total:.2}s (parallel = {})", !serial);
}
