//! The perf-measurement substrate: machine-readable benchmark artifacts.
//!
//! Every future perf claim about this repository is pinned by a JSON
//! artifact: `reproduce` emits `BENCH_reproduce.json` (wall-clock per table /
//! figure plus the total) and `BENCH_fleet.json` (the `large_drill`
//! throughput benchmark — events/sec under the heap scheduler and the
//! measured speedup over the retained naive scan — plus [`MegaBenchStats`],
//! the mega-drill panel: events/sec, serial and parallel stepping walls,
//! and peak RSS). The `bench_guard` binary
//! compares the former against the checked-in budget in
//! `ci/bench_budget.json` and fails CI when the total regresses more than 2×.
//!
//! No external serde is available offline, so the writers emit the (small,
//! flat) JSON by hand; [`read_json_number`] is the matching extractor used by
//! `bench_guard`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Where benchmark artifacts are written: `$BYTEROBUST_BENCH_DIR` if set,
/// else the current directory.
pub fn bench_dir() -> PathBuf {
    std::env::var_os("BYTEROBUST_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Runs `f`, returning its output and the elapsed wall-clock seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// One timed section of a benchmark run.
#[derive(Debug, Clone)]
pub struct Section {
    /// Section name (a table/figure identifier).
    pub name: String,
    /// Wall-clock seconds the section took on its thread.
    pub wall_secs: f64,
}

/// Accumulates per-section timings for one benchmark run and renders the
/// `BENCH_reproduce.json` artifact.
#[derive(Debug, Default)]
pub struct PerfRecorder {
    sections: Vec<Section>,
}

impl PerfRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one section's wall time.
    pub fn record(&mut self, name: &str, wall_secs: f64) {
        self.sections.push(Section {
            name: name.to_string(),
            wall_secs,
        });
    }

    /// The recorded sections, in record order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Renders the `BENCH_reproduce.json` document. `total_wall_secs` is the
    /// whole run's wall time (under a parallel harness it is less than the
    /// sum of the per-section times — that difference *is* the speedup).
    pub fn render_json(&self, fast_mode: bool, parallel: bool, total_wall_secs: f64) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"reproduce\",");
        let _ = writeln!(out, "  \"fast_mode\": {fast_mode},");
        let _ = writeln!(out, "  \"parallel\": {parallel},");
        let _ = writeln!(out, "  \"total_wall_secs\": {total_wall_secs:.4},");
        let sum: f64 = self.sections.iter().map(|s| s.wall_secs).sum();
        let _ = writeln!(out, "  \"sections_wall_secs_sum\": {sum:.4},");
        out.push_str("  \"sections\": [\n");
        for (i, section) in self.sections.iter().enumerate() {
            let comma = if i + 1 == self.sections.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"wall_secs\": {:.4}}}{comma}",
                json_escape(&section.name),
                section.wall_secs
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_reproduce.json` into [`bench_dir`] and returns its path.
    pub fn write_reproduce_json(
        &self,
        fast_mode: bool,
        parallel: bool,
        total_wall_secs: f64,
    ) -> std::io::Result<PathBuf> {
        let path = bench_dir().join("BENCH_reproduce.json");
        std::fs::write(
            &path,
            self.render_json(fast_mode, parallel, total_wall_secs),
        )?;
        Ok(path)
    }
}

/// The `large_drill` fleet throughput measurement backing `BENCH_fleet.json`.
#[derive(Debug, Clone)]
pub struct FleetBenchStats {
    /// Fleet seed.
    pub seed: u64,
    /// Concurrent jobs in the drill.
    pub jobs: usize,
    /// Total machines across the fleet.
    pub machines: usize,
    /// Incidents processed over the run.
    pub incidents: usize,
    /// Scheduler events processed (incidents plus job-end events).
    pub events: usize,
    /// Wall seconds for the heap-scheduler run.
    pub heap_wall_secs: f64,
    /// Wall seconds for the retained naive-scan reference run.
    pub naive_wall_secs: f64,
}

impl FleetBenchStats {
    /// Heap-scheduler throughput in events per second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.heap_wall_secs.max(1e-9)
    }

    /// Naive-scan wall time over heap wall time.
    pub fn scheduler_speedup(&self) -> f64 {
        self.naive_wall_secs / self.heap_wall_secs.max(1e-9)
    }

    /// Renders the `BENCH_fleet.json` document (large drill only).
    pub fn render_json(&self) -> String {
        self.render_json_with_mega(None)
    }

    /// Renders the `BENCH_fleet.json` document, appending the mega-drill
    /// measurement when one was taken. The document stays flat: mega keys
    /// are `mega_`-prefixed, so [`read_json_number`] sees no duplicates.
    pub fn render_json_with_mega(&self, mega: Option<&MegaBenchStats>) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"fleet_large_drill\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(out, "  \"machines\": {},", self.machines);
        let _ = writeln!(out, "  \"incidents\": {},", self.incidents);
        let _ = writeln!(out, "  \"events\": {},", self.events);
        let _ = writeln!(out, "  \"heap_wall_secs\": {:.4},", self.heap_wall_secs);
        let _ = writeln!(out, "  \"naive_wall_secs\": {:.4},", self.naive_wall_secs);
        let _ = writeln!(out, "  \"events_per_sec\": {:.1},", self.events_per_sec());
        match mega {
            None => {
                let _ = writeln!(
                    out,
                    "  \"scheduler_speedup\": {:.2}",
                    self.scheduler_speedup()
                );
            }
            Some(mega) => {
                let _ = writeln!(
                    out,
                    "  \"scheduler_speedup\": {:.2},",
                    self.scheduler_speedup()
                );
                out.push_str(&mega.render_fields());
            }
        }
        out.push_str("}\n");
        out
    }

    /// Writes `BENCH_fleet.json` into [`bench_dir`] and returns its path.
    pub fn write_fleet_json(&self, mega: Option<&MegaBenchStats>) -> std::io::Result<PathBuf> {
        let path = bench_dir().join("BENCH_fleet.json");
        std::fs::write(&path, self.render_json_with_mega(mega))?;
        Ok(path)
    }
}

/// The mega-drill stepping measurement appended to `BENCH_fleet.json`: the
/// 100×-scale fleet run once under the serial stepper and once under the
/// parallel pre-advance stepper (byte-identity asserted by the panel), with
/// events/sec and the process peak RSS. Keys are `mega_`-prefixed so the
/// document stays flat and collision-free for [`read_json_number`].
#[derive(Debug, Clone)]
pub struct MegaBenchStats {
    /// Fleet seed.
    pub seed: u64,
    /// Whether fast mode substituted the scaled-down smoke drill.
    pub fast_mode: bool,
    /// Concurrent jobs in the drill.
    pub jobs: usize,
    /// Total machines across the fleet.
    pub machines: usize,
    /// Incidents processed over the run.
    pub incidents: usize,
    /// Scheduler events processed (incidents plus job-end events).
    pub events: usize,
    /// Wall seconds for the serial-oracle run.
    pub serial_wall_secs: f64,
    /// Wall seconds for the parallel pre-advance run.
    pub parallel_wall_secs: f64,
    /// Worker threads the parallel run was given.
    pub stepping_threads: usize,
    /// Process peak RSS in bytes (`VmHWM`), read right after the runs. The
    /// mega drill dominates the process high-water mark by an order of
    /// magnitude, so this is an honest ceiling for the drill itself.
    pub peak_rss_bytes: u64,
}

impl MegaBenchStats {
    /// Throughput of the best of the two runs in events per second (the
    /// reports are byte-identical, so either run is the same work).
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.serial_wall_secs.min(self.parallel_wall_secs).max(1e-9)
    }

    /// Serial wall time over parallel wall time (below 1.0 on single-core
    /// hosts, where the scoped-thread fan-out only adds overhead).
    pub fn parallel_speedup(&self) -> f64 {
        self.serial_wall_secs / self.parallel_wall_secs.max(1e-9)
    }

    /// Renders the `mega_`-prefixed lines appended inside `BENCH_fleet.json`.
    fn render_fields(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "  \"mega_fast_mode\": {},", self.fast_mode);
        let _ = writeln!(out, "  \"mega_jobs\": {},", self.jobs);
        let _ = writeln!(out, "  \"mega_machines\": {},", self.machines);
        let _ = writeln!(out, "  \"mega_incidents\": {},", self.incidents);
        let _ = writeln!(out, "  \"mega_events\": {},", self.events);
        let _ = writeln!(
            out,
            "  \"mega_serial_wall_secs\": {:.4},",
            self.serial_wall_secs
        );
        let _ = writeln!(
            out,
            "  \"mega_parallel_wall_secs\": {:.4},",
            self.parallel_wall_secs
        );
        let _ = writeln!(
            out,
            "  \"mega_stepping_threads\": {},",
            self.stepping_threads
        );
        let _ = writeln!(
            out,
            "  \"mega_events_per_sec\": {:.1},",
            self.events_per_sec()
        );
        let _ = writeln!(
            out,
            "  \"mega_parallel_speedup\": {:.2},",
            self.parallel_speedup()
        );
        let _ = writeln!(out, "  \"mega_peak_rss_bytes\": {}", self.peak_rss_bytes);
        out
    }
}

/// The process's peak resident-set size in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// The resident query-plane measurement backing `BENCH_query.json`: an
/// open-loop synthetic stream served by the live [`WarehouseService`] during
/// `large_drill`, with throughput, latency quantiles, the planner mix, and
/// segment-cache behaviour. All wall-clock self-profiling — none of it
/// reaches the deterministic report.
///
/// [`WarehouseService`]: byterobust_fleet::WarehouseService
#[derive(Debug, Clone)]
pub struct QueryBenchStats {
    /// Fleet seed of the drill the service was attached to.
    pub seed: u64,
    /// Traffic-stream seed.
    pub traffic_seed: u64,
    /// Synthetic queries answered against the live service.
    pub queries: u64,
    /// Reader threads that drove the open-loop stream.
    pub reader_threads: usize,
    /// Epochs the runner published over the drill.
    pub epochs: u64,
    /// Wall seconds the query stream took (concurrent with the drill).
    pub stream_wall_secs: f64,
    /// Wall seconds of the whole drill (run + stream drain).
    pub drill_wall_secs: f64,
    /// Median per-query latency in nanoseconds (histogram bucket upper
    /// bound).
    pub p50_nanos: u64,
    /// 99th-percentile per-query latency in nanoseconds (bucket upper
    /// bound).
    pub p99_nanos: u64,
    /// Per-plan answer counts, `(label, count)`.
    pub plans: Vec<(String, u64)>,
    /// Segment-cache hits.
    pub cache_hits: u64,
    /// Segment-cache faults (segment loads).
    pub cache_faults: u64,
    /// Segment-cache evictions.
    pub cache_evictions: u64,
}

impl QueryBenchStats {
    /// Live-service throughput in queries per second.
    pub fn queries_per_sec(&self) -> f64 {
        self.queries as f64 / self.stream_wall_secs.max(1e-9)
    }

    /// Renders the `BENCH_query.json` document.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"query_plane_large_drill\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"traffic_seed\": {},", self.traffic_seed);
        let _ = writeln!(out, "  \"queries\": {},", self.queries);
        let _ = writeln!(out, "  \"reader_threads\": {},", self.reader_threads);
        let _ = writeln!(out, "  \"epochs\": {},", self.epochs);
        let _ = writeln!(out, "  \"stream_wall_secs\": {:.4},", self.stream_wall_secs);
        let _ = writeln!(out, "  \"drill_wall_secs\": {:.4},", self.drill_wall_secs);
        let _ = writeln!(out, "  \"queries_per_sec\": {:.1},", self.queries_per_sec());
        let _ = writeln!(out, "  \"p50_nanos\": {},", self.p50_nanos);
        let _ = writeln!(out, "  \"p99_nanos\": {},", self.p99_nanos);
        let _ = writeln!(out, "  \"cache_hits\": {},", self.cache_hits);
        let _ = writeln!(out, "  \"cache_faults\": {},", self.cache_faults);
        let _ = writeln!(out, "  \"cache_evictions\": {},", self.cache_evictions);
        out.push_str("  \"plans\": [\n");
        for (i, (label, count)) in self.plans.iter().enumerate() {
            let comma = if i + 1 == self.plans.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"count\": {count}}}{comma}",
                json_escape(label)
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_query.json` into [`bench_dir`] and returns its path.
    pub fn write_query_json(&self) -> std::io::Result<PathBuf> {
        let path = bench_dir().join("BENCH_query.json");
        std::fs::write(&path, self.render_json())?;
        Ok(path)
    }
}

/// The observability self-profiling artifact backing `BENCH_obs.json`:
/// trace codec timings plus the full wall-clock metrics registry export.
#[derive(Debug, Clone)]
pub struct ObsBenchStats {
    /// Wall seconds to export the drill trace to JSON.
    pub trace_export_secs: f64,
    /// Wall seconds to re-import the export.
    pub trace_import_secs: f64,
    /// Wall seconds to reconstruct every cause chain from the trace.
    pub trace_diagnose_secs: f64,
    /// The alerting plane's section — scoring wall clock plus the three
    /// rule-set scorecards — embedded verbatim as the `alerts` value
    /// (rendered by `AlertsStats::render_json`).
    pub alerts_json: String,
    /// The metrics registry's own JSON export (scheduler op counters,
    /// warehouse latency histograms, broker grant outcomes, pool gauges),
    /// embedded verbatim as the `metrics` value.
    pub metrics_json: String,
}

impl ObsBenchStats {
    /// Renders the `BENCH_obs.json` document.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"obs\",");
        let _ = writeln!(
            out,
            "  \"trace_export_secs\": {:.6},",
            self.trace_export_secs
        );
        let _ = writeln!(
            out,
            "  \"trace_import_secs\": {:.6},",
            self.trace_import_secs
        );
        let _ = writeln!(
            out,
            "  \"trace_diagnose_secs\": {:.6},",
            self.trace_diagnose_secs
        );
        let _ = writeln!(out, "  \"alerts\": {},", self.alerts_json.trim_end());
        let _ = writeln!(out, "  \"metrics\": {}", self.metrics_json.trim_end());
        out.push_str("}\n");
        out
    }

    /// Writes `BENCH_obs.json` into [`bench_dir`] and returns its path.
    pub fn write_obs_json(&self) -> std::io::Result<PathBuf> {
        let path = bench_dir().join("BENCH_obs.json");
        std::fs::write(&path, self.render_json())?;
        Ok(path)
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// Extracts every `{"name": "<x>", "<value_key>": <number>}` pair from a
/// JSON document written by this module (the `sections` arrays of
/// `BENCH_reproduce.json` and `ci/bench_budget.json`), in document order.
/// Objects without a numeric `value_key` after their `name` are skipped.
pub fn read_json_name_number_pairs(document: &str, value_key: &str) -> Vec<(String, f64)> {
    let mut pairs = Vec::new();
    let mut rest = document;
    while let Some(at) = rest.find("\"name\"") {
        rest = &rest[at + "\"name\"".len()..];
        let Some(colon) = rest.trim_start().strip_prefix(':') else {
            continue;
        };
        let value = colon.trim_start();
        let Some(value) = value.strip_prefix('"') else {
            continue;
        };
        let Some(end) = value.find('"') else { break };
        let name = &value[..end];
        // The value key must belong to this object: look only as far as the
        // object's closing brace.
        let tail = &value[end..];
        let object_end = tail.find('}').unwrap_or(tail.len());
        if let Some(number) = read_json_number(&tail[..object_end], value_key) {
            pairs.push((name.to_string(), number));
        }
        rest = tail;
    }
    pairs
}

/// Extracts the numeric value of `"key": <number>` from a JSON document
/// written by this module (flat documents, no nested duplicates of the key).
/// Returns `None` when the key is absent or not a number.
pub fn read_json_number(document: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = document.find(&needle)?;
    let rest = document[at + needle.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_renders_and_reads_back() {
        let mut perf = PerfRecorder::new();
        perf.record("table1_incidents", 0.25);
        perf.record("fig2_loss_mfu", 1.5);
        let json = perf.render_json(true, true, 1.75);
        assert_eq!(read_json_number(&json, "total_wall_secs"), Some(1.75));
        assert_eq!(
            read_json_number(&json, "sections_wall_secs_sum"),
            Some(1.75)
        );
        assert!(json.contains("\"name\": \"fig2_loss_mfu\""));
        assert!(json.contains("\"parallel\": true"));
    }

    #[test]
    fn fleet_stats_derivations() {
        let stats = FleetBenchStats {
            seed: 1,
            jobs: 24,
            machines: 1280,
            incidents: 500,
            events: 524,
            heap_wall_secs: 0.5,
            naive_wall_secs: 1.0,
        };
        assert!((stats.events_per_sec() - 1048.0).abs() < 1e-9);
        assert!((stats.scheduler_speedup() - 2.0).abs() < 1e-9);
        let json = stats.render_json();
        assert_eq!(read_json_number(&json, "events"), Some(524.0));
        assert_eq!(read_json_number(&json, "scheduler_speedup"), Some(2.0));
    }

    #[test]
    fn query_stats_derivations() {
        let stats = QueryBenchStats {
            seed: 1,
            traffic_seed: 2,
            queries: 1_000_000,
            reader_threads: 4,
            epochs: 615,
            stream_wall_secs: 10.0,
            drill_wall_secs: 10.5,
            p50_nanos: 4096,
            p99_nanos: 65536,
            plans: vec![("machine".to_string(), 7), ("scan".to_string(), 3)],
            cache_hits: 100,
            cache_faults: 5,
            cache_evictions: 2,
        };
        assert!((stats.queries_per_sec() - 100_000.0).abs() < 1e-6);
        let json = stats.render_json();
        assert_eq!(read_json_number(&json, "queries"), Some(1_000_000.0));
        assert_eq!(read_json_number(&json, "p99_nanos"), Some(65536.0));
        assert_eq!(read_json_number(&json, "cache_faults"), Some(5.0));
        assert_eq!(
            read_json_name_number_pairs(&json, "count"),
            vec![("machine".to_string(), 7.0), ("scan".to_string(), 3.0)]
        );
    }

    #[test]
    fn name_number_pairs_extraction() {
        let mut perf = PerfRecorder::new();
        perf.record("table1_incidents", 0.25);
        perf.record("fleet_panel", 1.5);
        let json = perf.render_json(true, false, 1.75);
        assert_eq!(
            read_json_name_number_pairs(&json, "wall_secs"),
            vec![
                ("table1_incidents".to_string(), 0.25),
                ("fleet_panel".to_string(), 1.5)
            ]
        );
        // A budget-shaped document with a different value key.
        let budget = r#"{"sections": [
            {"name": "a", "budget_secs": 0.5},
            {"name": "broken"},
            {"name": "b", "budget_secs": 2}
        ]}"#;
        assert_eq!(
            read_json_name_number_pairs(budget, "budget_secs"),
            vec![("a".to_string(), 0.5), ("b".to_string(), 2.0)]
        );
        assert!(read_json_name_number_pairs("{}", "wall_secs").is_empty());
    }

    #[test]
    fn json_number_extraction_edge_cases() {
        assert_eq!(read_json_number("{}", "missing"), None);
        assert_eq!(read_json_number("{\"a\": 3}", "a"), Some(3.0));
        assert_eq!(read_json_number("{\"a\": -1.5e3}", "a"), Some(-1500.0));
        assert_eq!(read_json_number("{\"a\": \"text\"}", "a"), None);
    }

    #[test]
    fn obs_stats_render_embeds_metrics() {
        let stats = ObsBenchStats {
            trace_export_secs: 0.001,
            trace_import_secs: 0.002,
            trace_diagnose_secs: 0.003,
            alerts_json: "{\"score_secs\": 0.000001}".to_string(),
            metrics_json: "{\"format\": 1}".to_string(),
        };
        let json = stats.render_json();
        assert_eq!(read_json_number(&json, "trace_export_secs"), Some(0.001));
        assert_eq!(read_json_number(&json, "trace_diagnose_secs"), Some(0.003));
        assert!(json.contains("\"alerts\": {\"score_secs\": 0.000001},"));
        assert!(json.contains("\"metrics\": {\"format\": 1}"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn timed_measures_and_passes_through() {
        let (value, secs) = timed(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }
}
