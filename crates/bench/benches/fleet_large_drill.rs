//! The headline fleet-scale throughput benchmark: the ~24-job `large_drill`
//! under the heap scheduler vs. the retained naive-scan reference. The
//! `reproduce` binary measures the same workload once and records it in
//! `BENCH_fleet.json`; this target exists for iterating on scheduler perf
//! (`cargo bench -p byterobust-bench --bench fleet_large_drill`).

use byterobust_fleet::{FleetConfig, FleetRunner, SchedulerKind};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_large_drill(c: &mut Criterion) {
    let runner = FleetRunner::new(FleetConfig::large_drill(), 20250916 + 41);
    c.bench_function("fleet_large_drill_heap", |b| b.iter(|| runner.run()));
    c.bench_function("fleet_large_drill_naive_scan", |b| {
        b.iter(|| runner.run_with(SchedulerKind::NaiveScan))
    });
}

criterion_group!(benches, bench_large_drill);
criterion_main!(benches);
