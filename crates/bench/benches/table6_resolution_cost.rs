//! Bench: regenerate the table6_resolution_cost experiment from the two production-job
//! deployment simulations (set BYTEROBUST_FULL=1 for the full three-month /
//! one-month durations; the default shortens them ~10x).

fn main() {
    if std::env::var("BYTEROBUST_FULL").is_err() {
        std::env::set_var("BYTEROBUST_FAST", "1");
    }
    let (dense, moe) = byterobust_bench::experiments::production_reports();
    let _ = &moe;
    println!(
        "{}",
        byterobust_bench::experiments::table6_resolution_cost(&dense, &moe)
    );
}
