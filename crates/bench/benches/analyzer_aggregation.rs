//! Bench: Fig. 7 stack aggregation, plus a Criterion measurement of the
//! aggregation + over-eviction decision at a 9,600-GPU world size.

use criterion::{criterion_group, criterion_main, Criterion};

fn aggregation(c: &mut Criterion) {
    println!("{}", byterobust_bench::experiments::analyzer_aggregation());
    c.bench_function("aggregation_analysis_9600_gpus", |b| {
        use byterobust_analyzer::RuntimeAnalyzer;
        use byterobust_cluster::MachineId;
        use byterobust_trainsim::{JobSpec, TrainingRuntime};
        let mut runtime = TrainingRuntime::new(JobSpec::production_dense());
        runtime.inject_hang(vec![MachineId(371)]);
        let stacks = runtime.capture_stacks();
        let analyzer = RuntimeAnalyzer::new();
        b.iter(|| std::hint::black_box(analyzer.analyze_hang(runtime.topology(), &stacks)))
    });
}

criterion_group!(benches, aggregation);
criterion_main!(benches);
