//! Bench: regenerate Table 8 (checkpointing efficiency) and measure the cost
//! of one ByteRobust save decision with Criterion.

use criterion::{criterion_group, criterion_main, Criterion};

fn checkpoint_table(c: &mut Criterion) {
    println!("{}", byterobust_bench::experiments::table8_checkpoint());
    c.bench_function("byterobust_save_outcome_70b", |b| {
        use byterobust_checkpoint::{CheckpointApproach, CheckpointEngine};
        use byterobust_sim::SimDuration;
        use byterobust_trainsim::{CodeVersion, JobSpec, StepModel};
        let job = JobSpec::table5_70b_small();
        let step =
            StepModel::new(job.clone()).step(&CodeVersion::initial(), 1.0, SimDuration::ZERO);
        let engine = CheckpointEngine::new(CheckpointApproach::ByteRobustSave, &job);
        b.iter(|| std::hint::black_box(engine.save(&step)))
    });
}

criterion_group!(benches, checkpoint_table);
criterion_main!(benches);
