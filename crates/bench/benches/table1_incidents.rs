//! Bench: regenerate Table 1 (incident distribution) and Table 2 (root causes).

fn main() {
    println!("{}", byterobust_bench::experiments::table1_incidents());
}
