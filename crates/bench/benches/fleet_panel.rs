//! Bench: regenerate the fleet orchestration panel — concurrent jobs over a
//! shared standby pool with the cross-job incident warehouse — comparing
//! per-job ETTR against solo runs with identical seeds.

fn main() {
    println!("{}", byterobust_bench::experiments::fleet_panel());
}
