//! Bench: Fig. 6 / Algorithm 1 dual-phase replay localization, plus a
//! Criterion measurement of the localization procedure at 1,024 machines.

use criterion::{criterion_group, criterion_main, Criterion};

fn replay(c: &mut Criterion) {
    println!("{}", byterobust_bench::experiments::replay_localization());
    c.bench_function("dual_phase_replay_1024_machines", |b| {
        use byterobust_cluster::MachineId;
        use byterobust_recovery::{DualPhaseReplay, ReplayConfig};
        use std::collections::HashSet;
        let machines: Vec<MachineId> = (0..1024).map(MachineId).collect();
        let faulty: HashSet<MachineId> = [MachineId(777)].into_iter().collect();
        let replay = DualPhaseReplay::new(ReplayConfig::new(16));
        b.iter(|| std::hint::black_box(replay.locate_with_ground_truth(&machines, &faulty)))
    });
}

criterion_group!(benches, replay);
criterion_main!(benches);
