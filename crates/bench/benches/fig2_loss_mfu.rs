//! Bench: regenerate Fig. 2 (loss and relative MFU on a 1,000-GPU job).

fn main() {
    if std::env::var("BYTEROBUST_FULL").is_err() {
        std::env::set_var("BYTEROBUST_FAST", "1");
    }
    println!("{}", byterobust_bench::experiments::fig2_loss_mfu());
}
