//! Bench: regenerate Table 3 (detection time with vs. without inspections).

fn main() {
    println!("{}", byterobust_bench::experiments::table3_detection());
}
