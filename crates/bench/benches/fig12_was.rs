//! Bench: regenerate Fig. 12 (weighted-average scheduling time) and measure
//! the cost of the warm-standby scheduling decision itself with Criterion.

use criterion::{criterion_group, criterion_main, Criterion};

fn was_table(c: &mut Criterion) {
    println!("{}", byterobust_bench::experiments::fig12_was());
    c.bench_function("warm_standby_scheduling_decision", |b| {
        use byterobust_recovery::{RestartCostModel, StandbyPoolConfig, WarmStandbyPool};
        use byterobust_sim::SimTime;
        let model = RestartCostModel::for_job(1024);
        b.iter(|| {
            let mut pool = WarmStandbyPool::new(StandbyPoolConfig::for_job(1024, 0.002));
            std::hint::black_box(model.warm_standby_time(&mut pool, 3, SimTime::ZERO))
        })
    });
}

criterion_group!(benches, was_table);
criterion_main!(benches);
