//! Bench: regenerate Table 7 (requeue vs. in-place hot-update scheduling time).

fn main() {
    println!("{}", byterobust_bench::experiments::table7_hot_update());
}
