//! System events: CUDA, RDMA, host and storage events surfaced by the
//! inspection infrastructure (dmesg Xid entries, DCGM alerts, switch telemetry,
//! storage client errors).

use serde::{Deserialize, Serialize};

use byterobust_cluster::MachineId;
use byterobust_sim::SimTime;

/// Kinds of system events the monitor consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// NVIDIA Xid error reported in dmesg.
    XidError,
    /// CUDA runtime error reported by the training process.
    CudaRuntimeError,
    /// RDMA NIC link went down.
    NicDown,
    /// RDMA NIC port flapping.
    NicFlapping,
    /// Leaf switch unresponsive.
    SwitchUnresponsive,
    /// DCGM could not query a GPU.
    DcgmQueryFailure,
    /// GPU ECC row remap event.
    EccRowRemap,
    /// GPU thermal alert.
    ThermalAlert,
    /// Host OS kernel panic.
    KernelPanic,
    /// Host out-of-memory killer fired.
    OomKill,
    /// Shared filesystem mount lost.
    FilesystemMountLost,
    /// Remote storage (HDFS) request failed.
    RemoteStorageError,
    /// Container runtime failure.
    ContainerFailure,
}

impl EventKind {
    /// Whether the event is network-related (tolerated a few times before
    /// eviction because links/switches often self-recover, §4.1).
    pub fn is_network(self) -> bool {
        matches!(
            self,
            EventKind::NicDown | EventKind::NicFlapping | EventKind::SwitchUnresponsive
        )
    }

    /// Whether the event by itself identifies the machine as faulty with high
    /// confidence.
    pub fn is_high_confidence(self) -> bool {
        matches!(
            self,
            EventKind::XidError
                | EventKind::DcgmQueryFailure
                | EventKind::KernelPanic
                | EventKind::EccRowRemap
        )
    }
}

/// A timestamped system event attributed to a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemEvent {
    /// When the event was observed.
    pub at: SimTime,
    /// What happened.
    pub kind: EventKind,
    /// The machine it was observed on.
    pub machine: MachineId,
}

impl SystemEvent {
    /// Creates an event.
    pub fn new(at: SimTime, kind: EventKind, machine: MachineId) -> Self {
        SystemEvent { at, kind, machine }
    }
}

/// A bounded in-memory event log with windowed queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<SystemEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event (must be in non-decreasing time order).
    pub fn push(&mut self, event: SystemEvent) {
        if let Some(last) = self.events.last() {
            assert!(event.at >= last.at, "events must be appended in time order");
        }
        self.events.push(event);
    }

    /// All events.
    pub fn all(&self) -> &[SystemEvent] {
        &self.events
    }

    /// Events on a machine within `(since, until]`.
    pub fn for_machine_in_window(
        &self,
        machine: MachineId,
        since: SimTime,
        until: SimTime,
    ) -> Vec<SystemEvent> {
        self.events
            .iter()
            .filter(|e| e.machine == machine && e.at > since && e.at <= until)
            .copied()
            .collect()
    }

    /// Number of events of a kind on a machine within `(since, until]`.
    pub fn count_kind_in_window(
        &self,
        machine: MachineId,
        kind: EventKind,
        since: SimTime,
        until: SimTime,
    ) -> usize {
        self.for_machine_in_window(machine, since, until)
            .iter()
            .filter(|e| e.kind == kind)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut log = EventLog::new();
        let m = MachineId(1);
        log.push(SystemEvent::new(
            SimTime::from_secs(10),
            EventKind::NicFlapping,
            m,
        ));
        log.push(SystemEvent::new(
            SimTime::from_secs(20),
            EventKind::NicFlapping,
            m,
        ));
        log.push(SystemEvent::new(
            SimTime::from_secs(30),
            EventKind::XidError,
            MachineId(2),
        ));
        assert_eq!(log.all().len(), 3);
        assert_eq!(
            log.count_kind_in_window(
                m,
                EventKind::NicFlapping,
                SimTime::ZERO,
                SimTime::from_secs(60)
            ),
            2
        );
        assert_eq!(
            log.count_kind_in_window(
                m,
                EventKind::NicFlapping,
                SimTime::from_secs(15),
                SimTime::from_secs(60)
            ),
            1
        );
        assert_eq!(
            log.for_machine_in_window(MachineId(2), SimTime::ZERO, SimTime::from_secs(60))
                .len(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut log = EventLog::new();
        log.push(SystemEvent::new(
            SimTime::from_secs(10),
            EventKind::OomKill,
            MachineId(0),
        ));
        log.push(SystemEvent::new(
            SimTime::from_secs(5),
            EventKind::OomKill,
            MachineId(0),
        ));
    }

    #[test]
    fn classification_flags() {
        assert!(EventKind::NicDown.is_network());
        assert!(EventKind::SwitchUnresponsive.is_network());
        assert!(!EventKind::XidError.is_network());
        assert!(EventKind::KernelPanic.is_high_confidence());
        assert!(!EventKind::NicFlapping.is_high_confidence());
    }
}
