//! Workload and system metric series.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use byterobust_sim::SimTime;

/// The metrics the monitor collects continuously (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Training loss.
    Loss,
    /// Gradient norm.
    GradNorm,
    /// Model FLOPs utilization.
    Mfu,
    /// Aggregate RDMA traffic (fraction of nominal).
    RdmaTraffic,
    /// TensorCore utilization (fraction of nominal).
    TensorCoreUtil,
    /// Per-machine maximum GPU temperature in Celsius.
    GpuTemperature,
    /// Tokens per second throughput.
    TokensPerSecond,
}

impl MetricKind {
    /// All metric kinds.
    pub const ALL: [MetricKind; 7] = [
        MetricKind::Loss,
        MetricKind::GradNorm,
        MetricKind::Mfu,
        MetricKind::RdmaTraffic,
        MetricKind::TensorCoreUtil,
        MetricKind::GpuTemperature,
        MetricKind::TokensPerSecond,
    ];
}

/// A single timestamped metric sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricPoint {
    /// When the sample was taken.
    pub at: SimTime,
    /// Sample value.
    pub value: f64,
}

/// In-memory metric store (the reproduction's stand-in for wandb).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricStore {
    series: HashMap<MetricKind, Vec<MetricPoint>>,
}

impl MetricStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample. Samples must be recorded in non-decreasing time
    /// order per metric.
    pub fn record(&mut self, kind: MetricKind, at: SimTime, value: f64) {
        let series = self.series.entry(kind).or_default();
        if let Some(last) = series.last() {
            assert!(
                at >= last.at,
                "metric samples must be recorded in time order"
            );
        }
        series.push(MetricPoint { at, value });
    }

    /// All samples of a metric, oldest first.
    pub fn series(&self, kind: MetricKind) -> &[MetricPoint] {
        self.series.get(&kind).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The most recent sample of a metric.
    pub fn latest(&self, kind: MetricKind) -> Option<MetricPoint> {
        self.series(kind).last().copied()
    }

    /// The most recent `n` values of a metric, oldest first.
    pub fn last_n(&self, kind: MetricKind, n: usize) -> Vec<f64> {
        let s = self.series(kind);
        s[s.len().saturating_sub(n)..]
            .iter()
            .map(|p| p.value)
            .collect()
    }

    /// Samples of a metric within the window `(since, until]`.
    pub fn window(&self, kind: MetricKind, since: SimTime, until: SimTime) -> Vec<MetricPoint> {
        self.series(kind)
            .iter()
            .filter(|p| p.at > since && p.at <= until)
            .copied()
            .collect()
    }

    /// Mean of the metric over the window `(since, until]`, if any samples.
    pub fn window_mean(&self, kind: MetricKind, since: SimTime, until: SimTime) -> Option<f64> {
        let points = self.window(kind, since, until);
        if points.is_empty() {
            return None;
        }
        Some(points.iter().map(|p| p.value).sum::<f64>() / points.len() as f64)
    }

    /// Total number of stored samples across all metrics.
    pub fn total_samples(&self) -> usize {
        self.series.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut store = MetricStore::new();
        for i in 0..10u64 {
            store.record(MetricKind::Loss, SimTime::from_secs(i), 10.0 - i as f64);
        }
        assert_eq!(store.series(MetricKind::Loss).len(), 10);
        assert_eq!(store.latest(MetricKind::Loss).unwrap().value, 1.0);
        assert_eq!(store.last_n(MetricKind::Loss, 3), vec![3.0, 2.0, 1.0]);
        assert_eq!(store.series(MetricKind::Mfu).len(), 0);
        assert!(store.latest(MetricKind::Mfu).is_none());
        assert_eq!(store.total_samples(), 10);
    }

    #[test]
    fn window_queries() {
        let mut store = MetricStore::new();
        for i in 0..20u64 {
            store.record(MetricKind::Mfu, SimTime::from_secs(i * 10), 0.4);
        }
        let w = store.window(
            MetricKind::Mfu,
            SimTime::from_secs(50),
            SimTime::from_secs(100),
        );
        assert_eq!(w.len(), 5);
        assert_eq!(
            store.window_mean(
                MetricKind::Mfu,
                SimTime::from_secs(50),
                SimTime::from_secs(100)
            ),
            Some(0.4)
        );
        assert_eq!(
            store.window_mean(
                MetricKind::Mfu,
                SimTime::from_secs(1000),
                SimTime::from_secs(2000)
            ),
            None
        );
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_recording_panics() {
        let mut store = MetricStore::new();
        store.record(MetricKind::Loss, SimTime::from_secs(10), 1.0);
        store.record(MetricKind::Loss, SimTime::from_secs(5), 1.0);
    }

    #[test]
    fn last_n_larger_than_series() {
        let mut store = MetricStore::new();
        store.record(MetricKind::GradNorm, SimTime::ZERO, 2.0);
        assert_eq!(store.last_n(MetricKind::GradNorm, 10), vec![2.0]);
    }
}
