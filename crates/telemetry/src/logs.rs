//! stdout/stderr log lines, process exit codes, and rule-based log
//! classification.
//!
//! Explicit failures are characterised by clear indicators in logs or exit
//! codes (§2.2). The controller's real-time analysis distinguishes user-space
//! errors (TypeError, IndexError — traceable to code modules, triggering a
//! rollback) from infrastructure-looking errors (CUDA/NCCL errors — triggering
//! stop-time checks), which is exactly what [`classify_log`] does.

use serde::{Deserialize, Serialize};

use byterobust_cluster::MachineId;
use byterobust_sim::SimTime;

/// Severity of a log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogLevel {
    /// Informational output.
    Info,
    /// Warning.
    Warning,
    /// Error output (stderr, tracebacks).
    Error,
}

/// A captured log line from a training process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogLine {
    /// When the line was emitted.
    pub at: SimTime,
    /// Machine that emitted it.
    pub machine: MachineId,
    /// Severity.
    pub level: LogLevel,
    /// Raw text.
    pub text: String,
}

impl LogLine {
    /// Creates an error-level log line.
    pub fn error(at: SimTime, machine: MachineId, text: &str) -> Self {
        LogLine {
            at,
            machine,
            level: LogLevel::Error,
            text: text.to_string(),
        }
    }
}

/// A process exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExitCode(pub i32);

impl ExitCode {
    /// Clean exit.
    pub const SUCCESS: ExitCode = ExitCode(0);
    /// Generic Python exception.
    pub const PYTHON_EXCEPTION: ExitCode = ExitCode(1);
    /// Process killed by SIGKILL (e.g. the OOM killer).
    pub const SIGKILL: ExitCode = ExitCode(137);
    /// Process aborted (SIGABRT), typical of CUDA assertion failures.
    pub const SIGABRT: ExitCode = ExitCode(134);
    /// Segmentation fault.
    pub const SIGSEGV: ExitCode = ExitCode(139);

    /// Whether the exit was clean.
    pub fn is_success(self) -> bool {
        self.0 == 0
    }
}

/// Coarse classification of an error indication, driving the controller's
/// first routing decision (Fig. 5 steps 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogClass {
    /// User-space error clearly traceable to user code (TypeError, IndexError,
    /// assertion in model code, shape mismatch) — triggers a code rollback.
    UserCode,
    /// CUDA / GPU runtime error — triggers stop-time GPU diagnostics.
    CudaOrGpu,
    /// NCCL / communication error or watchdog timeout — triggers network
    /// diagnostics.
    Communication,
    /// Host resource problem (OOM, disk full).
    HostResource,
    /// Remote storage (HDFS/checkpoint store) problem.
    Storage,
    /// Nothing recognizable.
    Unknown,
}

/// Classifies a raw error line using the same kind of rules a production log
/// agent applies.
pub fn classify_log(text: &str) -> LogClass {
    let t = text.to_ascii_lowercase();
    // Order matters: NCCL errors often also mention CUDA, so check comms
    // first; user-space Python exceptions are checked before generic CUDA
    // because a traceback may embed both.
    if t.contains("nccl") || t.contains("watchdog") || t.contains("timed out") || t.contains("rdma")
    {
        return LogClass::Communication;
    }
    if t.contains("typeerror")
        || t.contains("indexerror")
        || t.contains("keyerror")
        || t.contains("valueerror")
        || t.contains("assertionerror")
        || t.contains("shape mismatch")
        || t.contains("modulenotfounderror")
    {
        return LogClass::UserCode;
    }
    if t.contains("cuda error")
        || t.contains("cuda_error")
        || t.contains("illegal memory access")
        || t.contains("uncorrectable ecc")
        || t.contains("device-side assert")
        || t.contains("xid")
    {
        return LogClass::CudaOrGpu;
    }
    if t.contains("out of memory") || t.contains("oom") || t.contains("no space left on device") {
        return LogClass::HostResource;
    }
    if t.contains("hdfs") || t.contains("checkpoint upload") || t.contains("filesystem") {
        return LogClass::Storage;
    }
    LogClass::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_code_errors_classified() {
        assert_eq!(
            classify_log("TypeError: unsupported operand type(s)"),
            LogClass::UserCode
        );
        assert_eq!(
            classify_log("IndexError: list index out of range"),
            LogClass::UserCode
        );
        assert_eq!(
            classify_log("AssertionError: expected hidden dim 8192, shape mismatch"),
            LogClass::UserCode
        );
    }

    #[test]
    fn cuda_errors_classified() {
        assert_eq!(
            classify_log("RuntimeError: CUDA error: an illegal memory access was encountered"),
            LogClass::CudaOrGpu
        );
        assert_eq!(
            classify_log("dmesg: NVRM: Xid (PCI:0000:4f:00): 63"),
            LogClass::CudaOrGpu
        );
    }

    #[test]
    fn communication_errors_classified_before_cuda() {
        assert_eq!(
            classify_log("NCCL Internal Error: watchdog caught collective operation timeout"),
            LogClass::Communication
        );
        assert_eq!(
            classify_log("ncclUnhandledCudaError: Call to CUDA function failed"),
            LogClass::Communication
        );
    }

    #[test]
    fn host_and_storage_errors_classified() {
        assert_eq!(
            classify_log("Killed: out of memory"),
            LogClass::HostResource
        );
        assert_eq!(
            classify_log("OSError: No space left on device"),
            LogClass::HostResource
        );
        assert_eq!(
            classify_log("hdfs.ConnectTimeout: failed to reach namenode"),
            LogClass::Storage
        );
    }

    #[test]
    fn unknown_errors_fall_through() {
        assert_eq!(
            classify_log("something inexplicable happened"),
            LogClass::Unknown
        );
    }

    #[test]
    fn exit_codes() {
        assert!(ExitCode::SUCCESS.is_success());
        assert!(!ExitCode::SIGKILL.is_success());
        assert_eq!(ExitCode::SIGKILL, ExitCode(137));
    }

    #[test]
    fn log_line_constructor() {
        let line = LogLine::error(
            SimTime::from_secs(5),
            MachineId(3),
            "CUDA error: device lost",
        );
        assert_eq!(line.level, LogLevel::Error);
        assert_eq!(classify_log(&line.text), LogClass::CudaOrGpu);
    }
}
