//! Heartbeat tracking between the robust agents and the controller.
//!
//! Each robust agent exchanges gRPC heartbeats with the controller (§7). A
//! machine whose heartbeat goes silent past the timeout is treated as
//! unreachable — a strong explicit-failure signal independent of the training
//! process's own logs.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use byterobust_cluster::MachineId;
use byterobust_sim::{SimDuration, SimTime};

/// Tracks the last heartbeat received from each machine's agent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeartbeatTracker {
    timeout: SimDuration,
    last_seen: HashMap<MachineId, SimTime>,
}

impl HeartbeatTracker {
    /// Creates a tracker with the given timeout.
    pub fn new(timeout: SimDuration) -> Self {
        HeartbeatTracker {
            timeout,
            last_seen: HashMap::new(),
        }
    }

    /// The configured timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// Records a heartbeat from a machine.
    pub fn beat(&mut self, machine: MachineId, at: SimTime) {
        let entry = self.last_seen.entry(machine).or_insert(at);
        if at > *entry {
            *entry = at;
        }
    }

    /// Registers a machine without a heartbeat yet (treated as having beaten
    /// at registration time, so it is not instantly timed out).
    pub fn register(&mut self, machine: MachineId, at: SimTime) {
        self.last_seen.entry(machine).or_insert(at);
    }

    /// Removes a machine from tracking (after eviction).
    pub fn forget(&mut self, machine: MachineId) {
        self.last_seen.remove(&machine);
    }

    /// The last time a machine was heard from.
    pub fn last_seen(&self, machine: MachineId) -> Option<SimTime> {
        self.last_seen.get(&machine).copied()
    }

    /// Machines whose heartbeat has been silent longer than the timeout as of
    /// `now`, in ascending id order.
    pub fn timed_out(&self, now: SimTime) -> Vec<MachineId> {
        let mut out: Vec<MachineId> = self
            .last_seen
            .iter()
            .filter(|(_, &seen)| now.saturating_since(seen) > self.timeout)
            .map(|(&m, _)| m)
            .collect();
        out.sort();
        out
    }

    /// Number of machines being tracked.
    pub fn tracked(&self) -> usize {
        self.last_seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeats_prevent_timeout() {
        let mut hb = HeartbeatTracker::new(SimDuration::from_secs(60));
        let m = MachineId(0);
        hb.register(m, SimTime::ZERO);
        for i in 1..10u64 {
            hb.beat(m, SimTime::from_secs(i * 30));
        }
        assert!(hb.timed_out(SimTime::from_secs(300)).is_empty());
    }

    #[test]
    fn silence_is_detected() {
        let mut hb = HeartbeatTracker::new(SimDuration::from_secs(60));
        hb.register(MachineId(0), SimTime::ZERO);
        hb.register(MachineId(1), SimTime::ZERO);
        hb.beat(MachineId(1), SimTime::from_secs(100));
        let dead = hb.timed_out(SimTime::from_secs(120));
        assert_eq!(dead, vec![MachineId(0)]);
    }

    #[test]
    fn forget_removes_machine() {
        let mut hb = HeartbeatTracker::new(SimDuration::from_secs(60));
        hb.register(MachineId(7), SimTime::ZERO);
        assert_eq!(hb.tracked(), 1);
        hb.forget(MachineId(7));
        assert_eq!(hb.tracked(), 0);
        assert!(hb.timed_out(SimTime::from_hours(1)).is_empty());
    }

    #[test]
    fn stale_beat_does_not_rewind_clock() {
        let mut hb = HeartbeatTracker::new(SimDuration::from_secs(60));
        let m = MachineId(3);
        hb.beat(m, SimTime::from_secs(200));
        hb.beat(m, SimTime::from_secs(100));
        assert_eq!(hb.last_seen(m), Some(SimTime::from_secs(200)));
    }

    #[test]
    fn boundary_is_not_timed_out() {
        let mut hb = HeartbeatTracker::new(SimDuration::from_secs(60));
        hb.register(MachineId(0), SimTime::ZERO);
        // Exactly at the timeout boundary: not yet timed out (strictly greater).
        assert!(hb.timed_out(SimTime::from_secs(60)).is_empty());
        assert_eq!(hb.timed_out(SimTime::from_secs(61)), vec![MachineId(0)]);
    }
}
