//! Workload-metric anomaly detection rules (§4.1).
//!
//! The monitor treats the following as fault signals:
//! * NaN loss or gradient-norm values,
//! * a ≥5× jump in loss or gradient norm,
//! * zero RDMA traffic sustained for ten minutes (job hang indicator),
//! * persistently low TensorCore utilization,
//! * MFU decline relative to the recent window (fail-slow indicator).

use serde::{Deserialize, Serialize};

use byterobust_sim::{SimDuration, SimTime};

use crate::metrics::{MetricKind, MetricStore};

/// An anomaly derived from workload metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Anomaly {
    /// Loss or gradient norm became NaN.
    NanValue,
    /// Loss jumped by the given factor versus the recent baseline.
    LossSpike(f64),
    /// Gradient norm jumped by the given factor versus the recent baseline.
    GradNormSpike(f64),
    /// No RDMA traffic for at least the configured window (likely hang).
    ZeroRdmaTraffic,
    /// TensorCore utilization below threshold for the window (likely hang or
    /// severe degradation).
    LowTensorCoreUtil,
    /// MFU dropped by the given relative fraction versus the window mean
    /// (fail-slow).
    MfuDecline(f64),
}

/// Thresholds for the anomaly rules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnomalyDetectorConfig {
    /// Spike factor treated as anomalous for loss and gradient norm (paper: 5×).
    pub spike_factor: f64,
    /// How long RDMA traffic must be (near-)zero before flagging a hang
    /// (paper: 10 minutes).
    pub zero_traffic_window: SimDuration,
    /// TensorCore utilization below which the job is considered stalled.
    pub low_tensorcore_threshold: f64,
    /// Relative MFU drop versus the window mean treated as fail-slow.
    pub mfu_decline_threshold: f64,
    /// Number of recent samples forming the baseline window.
    pub baseline_samples: usize,
}

impl Default for AnomalyDetectorConfig {
    fn default() -> Self {
        AnomalyDetectorConfig {
            spike_factor: 5.0,
            zero_traffic_window: SimDuration::from_mins(10),
            low_tensorcore_threshold: 0.05,
            mfu_decline_threshold: 0.30,
            baseline_samples: 20,
        }
    }
}

/// Stateless detector applying the rules to a [`MetricStore`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnomalyDetector {
    /// Rule thresholds.
    pub config: AnomalyDetectorConfig,
}

impl AnomalyDetector {
    /// Creates a detector with default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a detector with custom thresholds.
    pub fn with_config(config: AnomalyDetectorConfig) -> Self {
        AnomalyDetector { config }
    }

    /// Evaluates all rules at time `now` and returns every anomaly found.
    pub fn check(&self, metrics: &MetricStore, now: SimTime) -> Vec<Anomaly> {
        let mut anomalies = Vec::new();

        // NaN detection on loss and grad norm.
        for kind in [MetricKind::Loss, MetricKind::GradNorm] {
            if let Some(latest) = metrics.latest(kind) {
                if latest.value.is_nan() {
                    anomalies.push(Anomaly::NanValue);
                    break;
                }
            }
        }

        // Spike detection: latest vs mean of previous window.
        if let Some(factor) = self.spike_factor_for(metrics, MetricKind::Loss) {
            if factor >= self.config.spike_factor {
                anomalies.push(Anomaly::LossSpike(factor));
            }
        }
        if let Some(factor) = self.spike_factor_for(metrics, MetricKind::GradNorm) {
            if factor >= self.config.spike_factor {
                anomalies.push(Anomaly::GradNormSpike(factor));
            }
        }

        // Zero RDMA traffic sustained for the window.
        if self.sustained_below(metrics, MetricKind::RdmaTraffic, 1e-6, now) {
            anomalies.push(Anomaly::ZeroRdmaTraffic);
        }

        // Low TensorCore utilization sustained for the window.
        if self.sustained_below(
            metrics,
            MetricKind::TensorCoreUtil,
            self.config.low_tensorcore_threshold,
            now,
        ) {
            anomalies.push(Anomaly::LowTensorCoreUtil);
        }

        // MFU decline versus window mean.
        let mfu_values = metrics.last_n(MetricKind::Mfu, self.config.baseline_samples);
        if mfu_values.len() >= 4 {
            let latest = *mfu_values.last().expect("non-empty");
            let baseline: f64 = mfu_values[..mfu_values.len() - 1].iter().sum::<f64>()
                / (mfu_values.len() - 1) as f64;
            if baseline > 0.0 {
                let drop = (baseline - latest) / baseline;
                if drop >= self.config.mfu_decline_threshold {
                    anomalies.push(Anomaly::MfuDecline(drop));
                }
            }
        }

        anomalies
    }

    /// Ratio of the latest sample to the mean of the preceding baseline
    /// window, ignoring NaNs.
    fn spike_factor_for(&self, metrics: &MetricStore, kind: MetricKind) -> Option<f64> {
        let values = metrics.last_n(kind, self.config.baseline_samples);
        if values.len() < 4 {
            return None;
        }
        let latest = *values.last().expect("non-empty");
        if latest.is_nan() {
            return None;
        }
        let baseline: Vec<f64> = values[..values.len() - 1]
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .collect();
        if baseline.is_empty() {
            return None;
        }
        let mean = baseline.iter().sum::<f64>() / baseline.len() as f64;
        if mean <= 0.0 {
            return None;
        }
        Some(latest / mean)
    }

    /// Whether every sample of the metric within the zero-traffic window is
    /// below `threshold`, and the window actually contains samples covering
    /// its whole span.
    fn sustained_below(
        &self,
        metrics: &MetricStore,
        kind: MetricKind,
        threshold: f64,
        now: SimTime,
    ) -> bool {
        let window_start = now.saturating_since(SimTime::ZERO);
        let since = if window_start > self.config.zero_traffic_window {
            now - self.config.zero_traffic_window
        } else {
            SimTime::ZERO
        };
        // Require the series to have started before the window to avoid firing
        // at job start.
        let series = metrics.series(kind);
        let Some(first) = series.first() else {
            return false;
        };
        if first.at > since {
            return false;
        }
        let in_window = metrics.window(kind, since, now);
        !in_window.is_empty() && in_window.iter().all(|p| p.value < threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populate_healthy(store: &mut MetricStore, steps: u64) {
        for i in 0..steps {
            let t = SimTime::from_secs(i * 30);
            store.record(MetricKind::Loss, t, 2.5 - 0.001 * i as f64);
            store.record(MetricKind::GradNorm, t, 1.2);
            store.record(MetricKind::Mfu, t, 0.42);
            store.record(MetricKind::RdmaTraffic, t, 0.95);
            store.record(MetricKind::TensorCoreUtil, t, 0.7);
        }
    }

    #[test]
    fn healthy_metrics_raise_nothing() {
        let mut store = MetricStore::new();
        populate_healthy(&mut store, 50);
        let detector = AnomalyDetector::new();
        assert!(detector
            .check(&store, SimTime::from_secs(50 * 30))
            .is_empty());
    }

    #[test]
    fn nan_loss_detected() {
        let mut store = MetricStore::new();
        populate_healthy(&mut store, 20);
        store.record(MetricKind::Loss, SimTime::from_secs(20 * 30), f64::NAN);
        let detector = AnomalyDetector::new();
        let anomalies = detector.check(&store, SimTime::from_secs(20 * 30));
        assert!(anomalies.contains(&Anomaly::NanValue));
    }

    #[test]
    fn loss_spike_detected_at_5x() {
        let mut store = MetricStore::new();
        populate_healthy(&mut store, 20);
        store.record(MetricKind::Loss, SimTime::from_secs(20 * 30), 2.5 * 6.0);
        let detector = AnomalyDetector::new();
        let anomalies = detector.check(&store, SimTime::from_secs(20 * 30));
        assert!(anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::LossSpike(f) if *f > 5.0)));
    }

    #[test]
    fn small_loss_bump_not_flagged() {
        let mut store = MetricStore::new();
        populate_healthy(&mut store, 20);
        store.record(MetricKind::Loss, SimTime::from_secs(20 * 30), 2.5 * 2.0);
        let detector = AnomalyDetector::new();
        assert!(detector
            .check(&store, SimTime::from_secs(20 * 30))
            .is_empty());
    }

    #[test]
    fn zero_rdma_traffic_requires_full_window() {
        let mut store = MetricStore::new();
        let detector = AnomalyDetector::new();
        // 20 healthy samples every 30s, then traffic goes to zero.
        populate_healthy(&mut store, 20);
        let hang_start = 20 * 30;
        for i in 0..25u64 {
            let t = SimTime::from_secs(hang_start + i * 30);
            store.record(MetricKind::RdmaTraffic, t, 0.0);
            store.record(MetricKind::TensorCoreUtil, t, 0.0);
        }
        // 5 minutes into the hang: not yet flagged (window is 10 minutes).
        let at_5min = SimTime::from_secs(hang_start + 300);
        let anomalies = detector.check(&store, at_5min);
        assert!(!anomalies.contains(&Anomaly::ZeroRdmaTraffic));
        // 12 minutes into the hang: flagged.
        let at_12min = SimTime::from_secs(hang_start + 720);
        let anomalies = detector.check(&store, at_12min);
        assert!(anomalies.contains(&Anomaly::ZeroRdmaTraffic));
        assert!(anomalies.contains(&Anomaly::LowTensorCoreUtil));
    }

    #[test]
    fn mfu_decline_detected() {
        let mut store = MetricStore::new();
        populate_healthy(&mut store, 20);
        store.record(MetricKind::Mfu, SimTime::from_secs(20 * 30), 0.42 * 0.5);
        let detector = AnomalyDetector::new();
        let anomalies = detector.check(&store, SimTime::from_secs(20 * 30));
        assert!(anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::MfuDecline(d) if *d > 0.3)));
    }

    #[test]
    fn grad_norm_spike_detected() {
        let mut store = MetricStore::new();
        populate_healthy(&mut store, 20);
        store.record(
            MetricKind::GradNorm,
            SimTime::from_secs(20 * 30),
            1.2 * 10.0,
        );
        let detector = AnomalyDetector::new();
        let anomalies = detector.check(&store, SimTime::from_secs(20 * 30));
        assert!(anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::GradNormSpike(_))));
    }

    #[test]
    fn empty_store_is_quiet() {
        let detector = AnomalyDetector::new();
        assert!(detector
            .check(&MetricStore::new(), SimTime::from_hours(1))
            .is_empty());
    }
}
