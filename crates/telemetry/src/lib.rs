//! Telemetry substrate: metrics, system events, logs/exit codes, anomaly
//! detection, and heartbeats.
//!
//! The paper's monitor (§4.1) gathers three classes of data — workload
//! training metrics (loss, gradient norm, MFU), stdout/stderr logs and exit
//! codes, and system events (CUDA, RDMA, host, storage) — and derives fault
//! signals from them: NaN values, 5× loss/grad-norm jumps, zero RDMA traffic
//! for ten minutes, low TensorCore utilization, MFU decline. This crate
//! provides the in-memory replacements for wandb/DCGM/dmesg that those rules
//! read, plus the rules themselves.

pub mod anomaly;
pub mod events;
pub mod heartbeat;
pub mod logs;
pub mod metrics;

pub use anomaly::{Anomaly, AnomalyDetector, AnomalyDetectorConfig};
pub use events::{EventKind, EventLog, SystemEvent};
pub use heartbeat::HeartbeatTracker;
pub use logs::{classify_log, ExitCode, LogClass, LogLine};
pub use metrics::{MetricKind, MetricPoint, MetricStore};

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::anomaly::{Anomaly, AnomalyDetector, AnomalyDetectorConfig};
    pub use crate::events::{EventKind, EventLog, SystemEvent};
    pub use crate::heartbeat::HeartbeatTracker;
    pub use crate::logs::{classify_log, ExitCode, LogClass, LogLine};
    pub use crate::metrics::{MetricKind, MetricPoint, MetricStore};
}
