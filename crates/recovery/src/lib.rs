//! Controlled and swift recovery (§6): warm standby machines, in-place hot
//! updates, restart-strategy cost models, dual-phase replay, and failover
//! cost accounting.
//!
//! This crate contains both ByteRobust's recovery mechanisms and the baseline
//! strategies the paper compares against in Table 7 and Fig. 12 (full requeue,
//! reschedule-only-evicted, and an oracle with unlimited standbys).

pub mod binomial;
pub mod failover;
pub mod hot_update;
pub mod replay;
pub mod restart;
pub mod standby;

pub use binomial::binomial_quantile;
pub use failover::FailoverCost;
pub use hot_update::{HotUpdateManager, UpdateRequest, UpdateUrgency};
pub use replay::{DualPhaseReplay, ReplayConfig, ReplayOutcome};
pub use restart::{RestartCostModel, RestartStrategy, SchedulingOutcome, StandbyScheduler};
pub use standby::{StandbyPoolConfig, WarmStandbyPool};

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::binomial::binomial_quantile;
    pub use crate::failover::FailoverCost;
    pub use crate::hot_update::{HotUpdateManager, UpdateRequest, UpdateUrgency};
    pub use crate::replay::{DualPhaseReplay, ReplayConfig, ReplayOutcome};
    pub use crate::restart::{
        RestartCostModel, RestartStrategy, SchedulingOutcome, StandbyScheduler,
    };
    pub use crate::standby::{StandbyPoolConfig, WarmStandbyPool};
}
