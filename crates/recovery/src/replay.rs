//! Dual-phase replay localization (Algorithm 1, Fig. 6).
//!
//! When every other mechanism fails — stop-time checks pass, reattempt fails,
//! rollback fails — ByteRobust assumes an unknown fault such as silent data
//! corruption and falls back to group testing. The machines are partitioned
//! twice (horizontally by `index / m`, vertically by `index mod n`), the
//! original job is replayed on each group with the TP/PP sizes kept fixed and
//! only the DP size reduced, and the intersection of the failing horizontal
//! and vertical groups pinpoints the faulty machine(s) in just two replay
//! rounds instead of `O(z)` per-machine tests.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

use byterobust_cluster::MachineId;
use byterobust_sim::SimDuration;

/// Parameters of the replay procedure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Group size `m`. Recommended to be a multiple of the PP size so each
    /// group can host complete pipelines with the original TP/PP layout.
    pub group_size: usize,
    /// Wall-clock duration of replaying the reduced-layer job on one phase's
    /// groups (all groups of a phase replay concurrently).
    pub phase_duration: SimDuration,
}

impl ReplayConfig {
    /// Creates a config with the given group size and a 30-minute phase
    /// duration (SDC incidents took the paper's team "more than 8 hours of
    /// offline stress testing" without this; dual-phase replay bounds it to
    /// two phases).
    pub fn new(group_size: usize) -> Self {
        ReplayConfig {
            group_size,
            phase_duration: SimDuration::from_mins(30),
        }
    }

    /// The Fig. 6 example: 24 machines, m = 4 (n = 6).
    pub fn fig6_example() -> Self {
        ReplayConfig::new(4)
    }
}

/// Result of running the dual-phase replay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Suspect machines (the solution set `S` of Algorithm 1). Empty when no
    /// group failed in either phase.
    pub suspects: Vec<MachineId>,
    /// Index of the failing horizontal group, if any.
    pub horizontal_group: Option<usize>,
    /// Index of the failing vertical group, if any.
    pub vertical_group: Option<usize>,
    /// Total diagnosis time (two sequential phases).
    pub duration: SimDuration,
}

impl ReplayOutcome {
    /// Whether the replay isolated anything.
    pub fn found_suspects(&self) -> bool {
        !self.suspects.is_empty()
    }
}

/// The dual-phase replay procedure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DualPhaseReplay {
    /// Configuration.
    pub config: ReplayConfig,
}

impl DualPhaseReplay {
    /// Creates the procedure.
    pub fn new(config: ReplayConfig) -> Self {
        DualPhaseReplay { config }
    }

    /// Expected cardinality of the suspect set per Algorithm 1:
    /// 1 when `m <= n`, otherwise `ceil(m / n)`.
    pub fn expected_suspect_count(&self, total_machines: usize) -> usize {
        let m = self.config.group_size;
        let n = (total_machines / m).max(1);
        if m <= n {
            1
        } else {
            m.div_ceil(n)
        }
    }

    /// Runs the two phases against the given machines.
    ///
    /// `machines` is the ordered list of machines participating in the replay
    /// (their position is the machine index `x_i` of Algorithm 1);
    /// `replay_fails` answers whether replaying the job on a given group of
    /// machines reproduces the failure. In production this is the actual
    /// replay run; in the harness it is derived from the injected ground
    /// truth (a group fails iff it contains an SDC machine).
    pub fn locate<F>(&self, machines: &[MachineId], mut replay_fails: F) -> ReplayOutcome
    where
        F: FnMut(&[MachineId]) -> bool,
    {
        let z = machines.len();
        let m = self.config.group_size.max(1);
        let n = (z / m).max(1);

        // Phase 1: horizontal grouping by index / m (n groups of m machines).
        let mut horizontal_group = None;
        for a in 0..n {
            let group: Vec<MachineId> = machines
                .iter()
                .enumerate()
                .filter(|(i, _)| i / m == a)
                .map(|(_, &id)| id)
                .collect();
            if !group.is_empty() && replay_fails(&group) {
                horizontal_group = Some(a);
                break;
            }
        }

        // Phase 2: vertical grouping by index mod n (n groups of ~z/n machines).
        let mut vertical_group = None;
        for b in 0..n {
            let group: Vec<MachineId> = machines
                .iter()
                .enumerate()
                .filter(|(i, _)| i % n == b)
                .map(|(_, &id)| id)
                .collect();
            if !group.is_empty() && replay_fails(&group) {
                vertical_group = Some(b);
                break;
            }
        }

        let duration = self.config.phase_duration.mul(2);
        let suspects = match (horizontal_group, vertical_group) {
            (Some(a), Some(b)) => machines
                .iter()
                .enumerate()
                .filter(|(i, _)| i / m == a && i % n == b)
                .map(|(_, &id)| id)
                .collect(),
            _ => Vec::new(),
        };
        ReplayOutcome {
            suspects,
            horizontal_group,
            vertical_group,
            duration,
        }
    }

    /// Convenience wrapper for the harness: a group fails iff it contains any
    /// ground-truth faulty machine.
    pub fn locate_with_ground_truth(
        &self,
        machines: &[MachineId],
        faulty: &HashSet<MachineId>,
    ) -> ReplayOutcome {
        self.locate(machines, |group| group.iter().any(|id| faulty.contains(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machines(z: usize) -> Vec<MachineId> {
        (0..z as u32).map(MachineId).collect()
    }

    #[test]
    fn fig6_example_isolates_machine_13() {
        // z = 24, m = 4, n = 6; machine 13 is the SDC machine. Fig. 6 shows
        // horizontal group H3 and vertical group V1 failing, intersecting at
        // machine 13.
        let replay = DualPhaseReplay::new(ReplayConfig::fig6_example());
        let faulty: HashSet<MachineId> = [MachineId(13)].into_iter().collect();
        let outcome = replay.locate_with_ground_truth(&machines(24), &faulty);
        assert_eq!(outcome.horizontal_group, Some(3));
        assert_eq!(outcome.vertical_group, Some(1));
        assert_eq!(outcome.suspects, vec![MachineId(13)]);
        assert_eq!(outcome.duration, SimDuration::from_mins(60));
    }

    #[test]
    fn every_single_faulty_machine_is_isolated_exactly() {
        // With m <= n the solution is always unique: sweep every possible
        // culprit position.
        let replay = DualPhaseReplay::new(ReplayConfig::new(4));
        let ms = machines(24);
        for culprit in 0..24u32 {
            let faulty: HashSet<MachineId> = [MachineId(culprit)].into_iter().collect();
            let outcome = replay.locate_with_ground_truth(&ms, &faulty);
            assert_eq!(
                outcome.suspects,
                vec![MachineId(culprit)],
                "culprit {culprit}"
            );
        }
    }

    #[test]
    fn expected_cardinality_formula() {
        // m=4, z=24 -> n=6, m<=n -> 1.
        assert_eq!(
            DualPhaseReplay::new(ReplayConfig::new(4)).expected_suspect_count(24),
            1
        );
        // m=8, z=16 -> n=2, m>n -> ceil(8/2)=4.
        assert_eq!(
            DualPhaseReplay::new(ReplayConfig::new(8)).expected_suspect_count(16),
            4
        );
    }

    #[test]
    fn suspect_set_size_matches_formula_when_m_greater_than_n() {
        let replay = DualPhaseReplay::new(ReplayConfig::new(8));
        let ms = machines(16);
        let faulty: HashSet<MachineId> = [MachineId(5)].into_iter().collect();
        let outcome = replay.locate_with_ground_truth(&ms, &faulty);
        assert!(outcome.suspects.contains(&MachineId(5)));
        assert_eq!(outcome.suspects.len(), replay.expected_suspect_count(16));
    }

    #[test]
    fn no_fault_means_no_suspects() {
        let replay = DualPhaseReplay::new(ReplayConfig::fig6_example());
        let outcome = replay.locate_with_ground_truth(&machines(24), &HashSet::new());
        assert!(!outcome.found_suspects());
        assert_eq!(outcome.horizontal_group, None);
        assert_eq!(outcome.vertical_group, None);
    }

    #[test]
    fn non_reproducible_fault_yields_empty_or_partial_result() {
        // A fault that never reproduces during replay (e.g. a thermal SDC)
        // produces no failing group and therefore no suspects — the caller
        // must fall back to other means.
        let replay = DualPhaseReplay::new(ReplayConfig::fig6_example());
        let outcome = replay.locate(&machines(24), |_| false);
        assert!(!outcome.found_suspects());
    }

    #[test]
    fn duration_is_two_phases() {
        let config = ReplayConfig {
            group_size: 4,
            phase_duration: SimDuration::from_mins(20),
        };
        let replay = DualPhaseReplay::new(config);
        let faulty: HashSet<MachineId> = [MachineId(0)].into_iter().collect();
        let outcome = replay.locate_with_ground_truth(&machines(8), &faulty);
        assert_eq!(outcome.duration, SimDuration::from_mins(40));
    }
}
