//! Binomial distribution helpers for warm-standby sizing.
//!
//! ByteRobust models simultaneous machine failures with a binomial
//! distribution — `n` machines, each failing within the provisioning horizon
//! with probability `p` — and provisions the P99 of that distribution as warm
//! standbys (§6.2).

/// Probability mass function of `Binomial(n, p)` at `k`, computed in log
/// space to stay stable for large `n`.
pub fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_choose = ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k);
    (ln_choose + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Cumulative distribution function of `Binomial(n, p)` at `k`.
pub fn binomial_cdf(n: u64, p: f64, k: u64) -> f64 {
    (0..=k.min(n))
        .map(|i| binomial_pmf(n, p, i))
        .sum::<f64>()
        .min(1.0)
}

/// Smallest `k` such that `P[X <= k] >= q` for `X ~ Binomial(n, p)`.
///
/// # Panics
/// Panics if `q` is not in `(0, 1]`.
pub fn binomial_quantile(n: u64, p: f64, q: f64) -> u64 {
    assert!(q > 0.0 && q <= 1.0, "quantile level must be in (0, 1]");
    let mut cumulative = 0.0;
    for k in 0..=n {
        cumulative += binomial_pmf(n, p, k);
        if cumulative >= q {
            return k;
        }
    }
    n
}

/// Natural log of `x!` via Stirling's series for large `x` and a direct sum
/// otherwise.
fn ln_factorial(x: u64) -> f64 {
    if x < 2 {
        return 0.0;
    }
    if x < 64 {
        return (2..=x).map(|i| (i as f64).ln()).sum();
    }
    let xf = x as f64;
    xf * xf.ln() - xf + 0.5 * (2.0 * std::f64::consts::PI * xf).ln() + 1.0 / (12.0 * xf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let n = 50;
        let p = 0.13;
        let total: f64 = (0..=n).map(|k| binomial_pmf(n, p, k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn pmf_degenerate_cases() {
        assert_eq!(binomial_pmf(10, 0.0, 0), 1.0);
        assert_eq!(binomial_pmf(10, 0.0, 1), 0.0);
        assert_eq!(binomial_pmf(10, 1.0, 10), 1.0);
        assert_eq!(binomial_pmf(10, 0.5, 11), 0.0);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let n = 100;
        let p = 0.02;
        let mut prev = 0.0;
        for k in 0..=n {
            let c = binomial_cdf(n, p, k);
            assert!(c >= prev - 1e-12);
            assert!(c <= 1.0 + 1e-12);
            prev = c;
        }
        assert!((binomial_cdf(n, p, n) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_matches_known_values() {
        // Binomial(1024, 0.002): mean ~2.05; P99 should be a small handful.
        let p99 = binomial_quantile(1024, 0.002, 0.99);
        assert!((4..=8).contains(&p99), "p99 = {p99}");
        // The median of Binomial(100, 0.5) is 50.
        assert_eq!(binomial_quantile(100, 0.5, 0.5), 50);
        // Quantile of a zero-probability event is 0.
        assert_eq!(binomial_quantile(1000, 0.0, 0.99), 0);
    }

    #[test]
    fn quantile_monotone_in_level() {
        let n = 500;
        let p = 0.01;
        let q50 = binomial_quantile(n, p, 0.50);
        let q90 = binomial_quantile(n, p, 0.90);
        let q99 = binomial_quantile(n, p, 0.99);
        assert!(q50 <= q90 && q90 <= q99);
    }

    #[test]
    fn large_n_is_stable() {
        // 10k machines with small probability: quantile should stay sane.
        let q = binomial_quantile(10_000, 0.0005, 0.99);
        assert!((5..=15).contains(&q), "q = {q}");
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn invalid_quantile_level_panics() {
        let _ = binomial_quantile(10, 0.5, 0.0);
    }
}
