//! Restart-strategy cost models (§8.2.1, Table 7, Fig. 12).
//!
//! Four ways to get a job running again after an interruption are compared:
//!
//! * **Requeue** — kill and resubmit the whole job: clear job metadata,
//!   reallocate instance quotas, rebuild every pod. Cost grows with job scale.
//! * **Reschedule** — keep the job, spin up replacement machines only for the
//!   evicted ones and reinstall their pods.
//! * **Oracle** — assume an unlimited pool of ready warm standbys; every
//!   eviction is covered by simply awakening a standby.
//! * **Warm standby (ByteRobust)** — awaken P99-provisioned standbys; only
//!   evictions beyond the pool require rescheduling the shortfall.
//!
//! The in-place hot-update path (code changes with no machine change) is also
//! modelled here because Table 7 compares it against a full requeue.

use serde::{Deserialize, Serialize};

use byterobust_sim::{SimDuration, SimTime};

use crate::standby::WarmStandbyPool;

/// What a [`StandbyScheduler`] did to cover one eviction batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SchedulingOutcome {
    /// Scheduling time charged to the incident (the slowest covering path).
    pub duration: SimDuration,
    /// Machines covered by ready warm standbys.
    pub granted: usize,
    /// Machines covered by preempting a lower-priority job's replenishment
    /// slot (zero outside a brokered fleet).
    pub preempted: usize,
    /// Machines covered by migrating a spare machine from another job (zero
    /// outside a brokered fleet).
    pub migrated: usize,
    /// Machines nothing could cover: rescheduled from the free pool at full
    /// cost. Any non-zero value here (or in `preempted`/`migrated`) means the
    /// incident's delay was partly capacity starvation, not failure handling.
    pub shortfall: usize,
}

impl SchedulingOutcome {
    /// Whether the standby pool ran dry while covering this eviction batch —
    /// the capacity-starvation marker the flight recorder attributes.
    pub fn starved(&self) -> bool {
        self.preempted + self.migrated + self.shortfall > 0
    }
}

/// A source of replacement machines for evictions. The plain
/// [`WarmStandbyPool`] implements it for solo jobs; a fleet broker implements
/// it to mediate grants across concurrent jobs (preempting lower-priority
/// replenishments and migrating spare machines when the shared pool runs
/// dry).
pub trait StandbyScheduler {
    /// Covers `evicted` machines at `now`, charging the slowest covering
    /// path. `evicted == 0` is the in-place (hot-update) restart.
    fn schedule(
        &mut self,
        model: &RestartCostModel,
        evicted: usize,
        now: SimTime,
    ) -> SchedulingOutcome;
}

impl StandbyScheduler for WarmStandbyPool {
    fn schedule(
        &mut self,
        model: &RestartCostModel,
        evicted: usize,
        now: SimTime,
    ) -> SchedulingOutcome {
        if evicted == 0 {
            return SchedulingOutcome {
                duration: model.hot_update_time(),
                ..SchedulingOutcome::default()
            };
        }
        let grant = self.request(evicted, now);
        let duration = if grant.shortfall == 0 {
            model.standby_awaken
        } else {
            // The granted standbys awaken in parallel with rescheduling the
            // shortfall; the slower path dominates.
            model
                .standby_awaken
                .max(model.reschedule_time(grant.shortfall))
        };
        SchedulingOutcome {
            duration,
            granted: grant.granted,
            shortfall: grant.shortfall,
            ..SchedulingOutcome::default()
        }
    }
}

/// Which restart strategy is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RestartStrategy {
    /// Kill and requeue the entire job.
    Requeue,
    /// Reschedule replacements only for evicted machines.
    Reschedule,
    /// Unlimited warm standbys (upper bound).
    Oracle,
    /// ByteRobust: P99-provisioned warm standbys with reschedule fallback.
    WarmStandby,
}

impl RestartStrategy {
    /// All strategies in Fig. 12 order.
    pub const ALL: [RestartStrategy; 4] = [
        RestartStrategy::Requeue,
        RestartStrategy::Reschedule,
        RestartStrategy::Oracle,
        RestartStrategy::WarmStandby,
    ];

    /// Label used in figures.
    pub fn name(self) -> &'static str {
        match self {
            RestartStrategy::Requeue => "Requeue",
            RestartStrategy::Reschedule => "Reschedule",
            RestartStrategy::Oracle => "Oracle",
            RestartStrategy::WarmStandby => "ByteRobust",
        }
    }
}

/// Scale-dependent scheduling-cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RestartCostModel {
    /// Machines in the job.
    pub job_machines: usize,
    /// Base cost of a full requeue at the 128-machine reference scale
    /// (clearing metadata, quota reallocation, pod rebuild; Table 7 row 1).
    pub requeue_base: SimDuration,
    /// Cost of rescheduling and rebuilding the pod of one replacement batch
    /// (dominated by image install; largely scale-independent).
    pub reschedule_pod_build: SimDuration,
    /// Extra machine-allocation latency for a reschedule.
    pub reschedule_allocation: SimDuration,
    /// Time to awaken a warm standby and have it join at the barrier.
    pub standby_awaken: SimDuration,
    /// Base cost of an in-place hot update at the reference scale (Table 7
    /// row 2).
    pub hot_update_base: SimDuration,
}

impl RestartCostModel {
    /// Reference scale the base costs are calibrated at (128 machines).
    pub const REFERENCE_MACHINES: f64 = 128.0;

    /// Creates the cost model for a job of the given size, with defaults
    /// calibrated to Table 7 / Fig. 12 magnitudes.
    pub fn for_job(job_machines: usize) -> Self {
        RestartCostModel {
            job_machines,
            requeue_base: SimDuration::from_secs(454),
            reschedule_pod_build: SimDuration::from_secs(260),
            reschedule_allocation: SimDuration::from_secs(90),
            standby_awaken: SimDuration::from_secs(60),
            hot_update_base: SimDuration::from_secs(46),
        }
    }

    fn scale_factor(&self, exponent: f64) -> f64 {
        (self.job_machines as f64 / Self::REFERENCE_MACHINES)
            .max(0.01)
            .powf(exponent)
    }

    /// Scheduling time of a full requeue. Grows sub-linearly with scale
    /// (metadata clearing, quota reallocation and pod rebuild all touch every
    /// machine, but run with parallelism): calibrated to Table 7's
    /// 454 s → 768 s from 128 to 1024 machines.
    pub fn requeue_time(&self) -> SimDuration {
        self.requeue_base.mul_f64(self.scale_factor(0.25))
    }

    /// Scheduling time of an in-place hot update: no machine change, only a
    /// coordinated process restart, nearly flat in scale (Table 7:
    /// 46 s → 65 s).
    pub fn hot_update_time(&self) -> SimDuration {
        self.hot_update_base.mul_f64(self.scale_factor(0.165))
    }

    /// Scheduling time of a reschedule covering `evicted` machines.
    pub fn reschedule_time(&self, evicted: usize) -> SimDuration {
        if evicted == 0 {
            return self.hot_update_time();
        }
        // Pod builds for replacement machines run in parallel; allocation has
        // a small per-machine component.
        let allocation =
            self.reschedule_allocation + SimDuration::from_secs(2).mul(evicted.min(64) as u64);
        self.reschedule_pod_build.mul_f64(self.scale_factor(0.1)) + allocation
    }

    /// Scheduling time of the oracle: every eviction covered by a ready
    /// standby.
    pub fn oracle_time(&self, evicted: usize) -> SimDuration {
        if evicted == 0 {
            return self.hot_update_time();
        }
        self.standby_awaken
    }

    /// Scheduling time of ByteRobust's warm-standby strategy for an eviction
    /// of `evicted` machines, mutating the pool. If the pool covers all
    /// evictions the cost is a standby awaken; any shortfall additionally
    /// pays the reschedule path for the missing machines (the job cannot
    /// resume until all replacements are ready).
    pub fn warm_standby_time(
        &self,
        pool: &mut WarmStandbyPool,
        evicted: usize,
        now: SimTime,
    ) -> SimDuration {
        pool.schedule(self, evicted, now).duration
    }

    /// Time to migrate a healthy spare machine from another job into this
    /// one: drain it from the donor, re-target its (pre-built) pod at the
    /// receiving job's image, and join at the barrier. No machine allocation
    /// and no image install — strictly cheaper than rescheduling from the
    /// free pool.
    pub fn migration_time(&self) -> SimDuration {
        self.standby_awaken + SimDuration::from_secs(120)
    }

    /// Time for a machine whose replenishment slot was preempted from another
    /// job to come online: wait out the remaining provisioning, then awaken.
    pub fn preempted_slot_time(&self, now: SimTime, completes_at: SimTime) -> SimDuration {
        completes_at.saturating_since(now) + self.standby_awaken
    }

    /// Scheduling time for a non-mutating strategy (requeue / reschedule /
    /// oracle).
    pub fn time_for(&self, strategy: RestartStrategy, evicted: usize) -> SimDuration {
        match strategy {
            RestartStrategy::Requeue => self.requeue_time(),
            RestartStrategy::Reschedule => self.reschedule_time(evicted),
            RestartStrategy::Oracle => self.oracle_time(evicted),
            RestartStrategy::WarmStandby => {
                // Stateless approximation: assume the pool covers the P99 case.
                self.standby_awaken
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standby::StandbyPoolConfig;
    use byterobust_sim::SimTime;

    #[test]
    fn requeue_times_match_table7_shape() {
        let times: Vec<f64> = [128usize, 256, 512, 1024]
            .iter()
            .map(|&m| RestartCostModel::for_job(m).requeue_time().as_secs_f64())
            .collect();
        // Table 7: 454, 545, 635, 768 seconds. Allow 10% tolerance.
        let expected = [454.0, 545.0, 635.0, 768.0];
        for (t, e) in times.iter().zip(expected.iter()) {
            assert!((t - e).abs() / e < 0.10, "got {t}, expected ~{e}");
        }
    }

    #[test]
    fn hot_update_times_match_table7_shape() {
        let times: Vec<f64> = [128usize, 256, 512, 1024]
            .iter()
            .map(|&m| RestartCostModel::for_job(m).hot_update_time().as_secs_f64())
            .collect();
        let expected = [46.0, 51.0, 54.0, 65.0];
        for (t, e) in times.iter().zip(expected.iter()) {
            assert!((t - e).abs() / e < 0.15, "got {t}, expected ~{e}");
        }
        // Hot update is ~11x faster than requeue at the largest scale.
        let model = RestartCostModel::for_job(1024);
        let speedup = model.requeue_time().as_secs_f64() / model.hot_update_time().as_secs_f64();
        assert!(speedup > 9.0 && speedup < 14.0, "speedup = {speedup}");
    }

    #[test]
    fn strategy_ordering_for_small_evictions() {
        let model = RestartCostModel::for_job(1024);
        let requeue = model.time_for(RestartStrategy::Requeue, 2);
        let reschedule = model.time_for(RestartStrategy::Reschedule, 2);
        let oracle = model.time_for(RestartStrategy::Oracle, 2);
        let warm = model.time_for(RestartStrategy::WarmStandby, 2);
        assert!(
            requeue > reschedule,
            "requeue {requeue} vs reschedule {reschedule}"
        );
        assert!(reschedule > oracle);
        assert!(warm >= oracle);
        assert!(warm < reschedule);
    }

    #[test]
    fn warm_standby_falls_back_on_catastrophic_eviction() {
        let model = RestartCostModel::for_job(1024);
        let mut pool = WarmStandbyPool::new(StandbyPoolConfig::for_job(1024, 0.002));
        let small = model.warm_standby_time(&mut pool, 1, SimTime::ZERO);
        assert_eq!(small, model.standby_awaken);
        // Catastrophic: 32 machines evicted at once (switch failure).
        let mut pool = WarmStandbyPool::new(StandbyPoolConfig::for_job(1024, 0.002));
        let catastrophic = model.warm_standby_time(&mut pool, 32, SimTime::ZERO);
        assert!(catastrophic > small);
        assert!(catastrophic >= model.reschedule_time(32 - pool.target_size()));
    }

    #[test]
    fn zero_eviction_is_a_hot_update() {
        let model = RestartCostModel::for_job(256);
        assert_eq!(model.reschedule_time(0), model.hot_update_time());
        assert_eq!(model.oracle_time(0), model.hot_update_time());
    }

    #[test]
    fn strategy_names() {
        assert_eq!(RestartStrategy::WarmStandby.name(), "ByteRobust");
        assert_eq!(RestartStrategy::ALL.len(), 4);
    }

    #[test]
    fn pool_scheduler_reports_starvation() {
        let model = RestartCostModel::for_job(1024);
        let mut pool = WarmStandbyPool::new(StandbyPoolConfig::for_job(1024, 0.002));
        // In-place restart: no machines, hot-update cost, no starvation.
        let inplace = pool.schedule(&model, 0, SimTime::ZERO);
        assert_eq!(inplace.duration, model.hot_update_time());
        assert!(!inplace.starved());
        // Covered eviction: awaken cost, no starvation.
        let covered = pool.schedule(&model, 1, SimTime::ZERO);
        assert_eq!(covered.duration, model.standby_awaken);
        assert_eq!(covered.granted, 1);
        assert!(!covered.starved());
        // A drained pool reports the shortfall so the incident can be
        // attributed to capacity starvation.
        let starved = pool.schedule(&model, 40, SimTime::ZERO);
        assert!(starved.shortfall > 0);
        assert!(starved.starved());
        assert_eq!(starved.duration, model.reschedule_time(starved.shortfall));
    }

    #[test]
    fn migration_beats_reschedule_and_preemption_is_bounded() {
        let model = RestartCostModel::for_job(128);
        assert!(
            model.migration_time() < model.reschedule_time(1),
            "migration ({}) must be strictly cheaper than rescheduling ({})",
            model.migration_time(),
            model.reschedule_time(1)
        );
        // A slot completing immediately costs just the awaken; one completing
        // later costs the wait on top.
        let now = SimTime::from_secs(100);
        assert_eq!(model.preempted_slot_time(now, now), model.standby_awaken);
        assert_eq!(
            model.preempted_slot_time(now, now + SimDuration::from_secs(90)),
            model.standby_awaken + SimDuration::from_secs(90)
        );
    }
}
