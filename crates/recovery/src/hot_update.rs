//! In-place hot updates (§6.1).
//!
//! Manual code/data adjustments are the single largest incident class in
//! Table 1. Instead of tearing the job down and rescheduling machines,
//! ByteRobust applies code changes *in place*, preserving the pod
//! environment. Urgent changes (bug fixes) stop training immediately;
//! non-critical changes are merged lazily into the next failure-driven
//! restart, or forced once a triggering window (default 24 h) expires. Every
//! applied change is persisted so it can be rolled back when the stop-time
//! checks implicate recent user code.

use serde::{Deserialize, Serialize};

use byterobust_sim::{SimDuration, SimTime};
use byterobust_trainsim::CodeVersion;

/// How urgently an update must be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateUrgency {
    /// Bug fix or algorithm correction: halt training and apply now.
    Critical,
    /// Optimization / version bump: apply at the next restart or when the
    /// triggering window expires.
    NonCritical,
}

/// A requested code/data change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateRequest {
    /// When the request was filed.
    pub requested_at: SimTime,
    /// Urgency class.
    pub urgency: UpdateUrgency,
    /// Human-readable description (persisted for traceability).
    pub description: String,
    /// Probability the change introduces a bug that later surfaces as a
    /// user-code failure.
    pub bug_risk: f64,
}

/// A record of an applied update (the persistence the paper requires for
/// traceability and reproducibility).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppliedUpdate {
    /// The original request.
    pub request: UpdateRequest,
    /// When it was applied.
    pub applied_at: SimTime,
    /// Code version produced by applying it.
    pub resulting_version: u32,
    /// Whether it was later rolled back.
    pub rolled_back: bool,
}

/// Manages pending and applied hot updates and the resulting code version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotUpdateManager {
    /// Window after which a pending non-critical update is force-applied.
    pub trigger_window: SimDuration,
    /// Time to apply an in-place update and resume (Table 7 measures 46–65 s
    /// at increasing scale; the scale dependence lives in
    /// [`crate::restart::RestartCostModel`]).
    pub apply_time: SimDuration,
    pending: Vec<UpdateRequest>,
    history: Vec<AppliedUpdate>,
    current: CodeVersion,
    previous: Option<CodeVersion>,
}

impl HotUpdateManager {
    /// Creates a manager starting from the initial naive code version with the
    /// paper's 24-hour trigger window.
    pub fn new() -> Self {
        HotUpdateManager {
            trigger_window: SimDuration::from_hours(24),
            apply_time: SimDuration::from_secs(50),
            pending: Vec::new(),
            history: Vec::new(),
            current: CodeVersion::initial(),
            previous: None,
        }
    }

    /// Currently deployed code version.
    pub fn current_version(&self) -> &CodeVersion {
        &self.current
    }

    /// Pending (not yet applied) updates.
    pub fn pending(&self) -> &[UpdateRequest] {
        &self.pending
    }

    /// Applied-update history (persisted database in production).
    pub fn history(&self) -> &[AppliedUpdate] {
        &self.history
    }

    /// Files an update request. Returns `true` if the update is critical and
    /// the caller should halt training to apply it immediately.
    pub fn submit(&mut self, request: UpdateRequest) -> bool {
        let critical = request.urgency == UpdateUrgency::Critical;
        self.pending.push(request);
        critical
    }

    /// Whether any pending non-critical update has exceeded the trigger
    /// window as of `now` (forcing an apply even without a failure).
    pub fn window_expired(&self, now: SimTime) -> bool {
        self.pending
            .iter()
            .any(|r| now.saturating_since(r.requested_at) >= self.trigger_window)
    }

    /// Whether there is anything to apply.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Applies every pending update in place (lazy merge at a restart
    /// opportunity or on window expiry). Returns the new code version, or
    /// `None` if nothing was pending. The aggregate bug risk of the merged
    /// updates carries into the new version.
    pub fn apply_pending(&mut self, now: SimTime) -> Option<CodeVersion> {
        if self.pending.is_empty() {
            return None;
        }
        let merged_risk = 1.0
            - self
                .pending
                .iter()
                .fold(1.0, |acc, r| acc * (1.0 - r.bug_risk.clamp(0.0, 1.0)));
        self.previous = Some(self.current);
        let new_version = self.current.improved(merged_risk);
        for request in self.pending.drain(..) {
            self.history.push(AppliedUpdate {
                request,
                applied_at: now,
                resulting_version: new_version.version,
                rolled_back: false,
            });
        }
        self.current = new_version;
        Some(new_version)
    }

    /// Rolls back to the previous code version (Fig. 5 rollback path),
    /// marking the most recent batch of applied updates as rolled back.
    /// Returns the restored version, or `None` if there is nothing to roll
    /// back to.
    pub fn rollback(&mut self) -> Option<CodeVersion> {
        let previous = self.previous.take()?;
        let restored = self.current.rolled_back_to(&previous);
        let latest_version = self
            .history
            .iter()
            .map(|h| h.resulting_version)
            .max()
            .unwrap_or(self.current.version);
        for entry in self
            .history
            .iter_mut()
            .filter(|h| h.resulting_version == latest_version)
        {
            entry.rolled_back = true;
        }
        self.current = restored;
        Some(restored)
    }

    /// Whether the most recently applied (non rolled-back) updates carry a
    /// meaningful bug risk — used by the diagnoser to decide whether a
    /// rollback is a plausible fix.
    pub fn recent_update_suspicious(&self) -> bool {
        self.previous.is_some() && self.current.bug_risk > 0.10
    }
}

impl Default for HotUpdateManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(urgency: UpdateUrgency, at_hours: u64, risk: f64) -> UpdateRequest {
        UpdateRequest {
            requested_at: SimTime::from_hours(at_hours),
            urgency,
            description: "fused kernel rollout".to_string(),
            bug_risk: risk,
        }
    }

    #[test]
    fn critical_updates_demand_immediate_apply() {
        let mut mgr = HotUpdateManager::new();
        assert!(mgr.submit(request(UpdateUrgency::Critical, 0, 0.1)));
        assert!(!mgr.submit(request(UpdateUrgency::NonCritical, 0, 0.1)));
    }

    #[test]
    fn lazy_apply_merges_all_pending() {
        let mut mgr = HotUpdateManager::new();
        mgr.submit(request(UpdateUrgency::NonCritical, 0, 0.05));
        mgr.submit(request(UpdateUrgency::NonCritical, 1, 0.10));
        let v0 = *mgr.current_version();
        let v1 = mgr.apply_pending(SimTime::from_hours(2)).unwrap();
        assert_eq!(v1.version, v0.version + 1);
        assert!(v1.kernel_efficiency > v0.kernel_efficiency);
        assert!(!mgr.has_pending());
        assert_eq!(mgr.history().len(), 2);
        // Merged risk combines both (1 - 0.95*0.90 ≈ 0.145).
        assert!((mgr.current_version().bug_risk - 0.145).abs() < 1e-9);
    }

    #[test]
    fn apply_with_nothing_pending_is_none() {
        let mut mgr = HotUpdateManager::new();
        assert!(mgr.apply_pending(SimTime::ZERO).is_none());
    }

    #[test]
    fn window_expiry_forces_apply() {
        let mut mgr = HotUpdateManager::new();
        mgr.submit(request(UpdateUrgency::NonCritical, 0, 0.02));
        assert!(!mgr.window_expired(SimTime::from_hours(10)));
        assert!(mgr.window_expired(SimTime::from_hours(24)));
    }

    #[test]
    fn rollback_restores_previous_efficiency_and_marks_history() {
        let mut mgr = HotUpdateManager::new();
        let original = *mgr.current_version();
        mgr.submit(request(UpdateUrgency::NonCritical, 0, 0.9));
        mgr.apply_pending(SimTime::from_hours(1)).unwrap();
        assert!(mgr.recent_update_suspicious());
        let rolled = mgr.rollback().unwrap();
        assert!((rolled.kernel_efficiency - original.kernel_efficiency).abs() < 1e-12);
        assert!(mgr.history().iter().all(|h| h.rolled_back));
        // A second rollback has nothing to restore.
        assert!(mgr.rollback().is_none());
    }

    #[test]
    fn version_counter_moves_forward_across_rollbacks() {
        let mut mgr = HotUpdateManager::new();
        mgr.submit(request(UpdateUrgency::NonCritical, 0, 0.5));
        let v1 = mgr.apply_pending(SimTime::from_hours(1)).unwrap();
        let v2 = mgr.rollback().unwrap();
        assert!(v2.version > v1.version);
    }
}
