//! Warm-standby machine pool (§6.2).
//!
//! ByteRobust keeps a small pool of pre-provisioned machines — pod environment
//! initialized, self-checked, sleeping in a low-power polling loop — sized at
//! the P99 of the binomial simultaneous-failure distribution. On eviction the
//! controller awakens standbys instead of asking the cluster scheduler for new
//! machines; the pool is replenished asynchronously afterwards.

use serde::{Deserialize, Serialize};

use byterobust_sim::{SimDuration, SimTime};

use crate::binomial::binomial_quantile;

/// Sizing and timing parameters for the pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StandbyPoolConfig {
    /// Machines in the training job.
    pub job_machines: usize,
    /// Probability that an individual machine fails within the provisioning
    /// horizon (derived from historical data; §6.2).
    pub per_machine_failure_prob: f64,
    /// Quantile of the simultaneous-failure distribution to provision for.
    pub quantile: f64,
    /// Time to wake a sleeping standby and let it join the job at the next
    /// barrier (§7: the barrier poll loop).
    pub awaken_time: SimDuration,
    /// Time to provision a brand-new standby from the free pool: machine
    /// allocation, image installation, library download, self-check.
    pub provision_time: SimDuration,
}

impl StandbyPoolConfig {
    /// Production-flavoured defaults for a job of `job_machines` machines.
    pub fn for_job(job_machines: usize, per_machine_failure_prob: f64) -> Self {
        StandbyPoolConfig {
            job_machines,
            per_machine_failure_prob,
            quantile: 0.99,
            awaken_time: SimDuration::from_secs(60),
            provision_time: SimDuration::from_secs(420),
        }
    }

    /// The P99 pool size for this configuration.
    pub fn p99_pool_size(&self) -> usize {
        binomial_quantile(
            self.job_machines as u64,
            self.per_machine_failure_prob,
            self.quantile,
        )
        .max(1) as usize
    }
}

/// The result of asking the pool to cover an eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StandbyGrant {
    /// Standbys awakened immediately.
    pub granted: usize,
    /// Machines that still need to be rescheduled from the free pool
    /// (evictions exceeding the ready standbys).
    pub shortfall: usize,
}

/// The warm-standby pool state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmStandbyPool {
    config: StandbyPoolConfig,
    target_size: usize,
    ready: usize,
    /// Completion times of in-flight replenishments.
    provisioning: Vec<SimTime>,
}

impl WarmStandbyPool {
    /// Creates a pool at its target (P99) size, fully provisioned.
    pub fn new(config: StandbyPoolConfig) -> Self {
        let target = config.p99_pool_size();
        WarmStandbyPool {
            config,
            target_size: target,
            ready: target,
            provisioning: Vec::new(),
        }
    }

    /// The pool's sizing configuration.
    pub fn config(&self) -> &StandbyPoolConfig {
        &self.config
    }

    /// Target (P99) pool size.
    pub fn target_size(&self) -> usize {
        self.target_size
    }

    /// Standbys ready right now.
    pub fn ready(&self) -> usize {
        self.ready
    }

    /// Replenishments still in flight.
    pub fn in_flight(&self) -> usize {
        self.provisioning.len()
    }

    /// Moves completed replenishments into the ready pool as of `now`.
    pub fn tick(&mut self, now: SimTime) {
        let (done, pending): (Vec<SimTime>, Vec<SimTime>) =
            self.provisioning.iter().partition(|&&t| t <= now);
        self.ready += done.len();
        self.provisioning = pending;
    }

    /// Requests standbys to cover `evicted` machines at time `now`.
    ///
    /// Ready standbys are granted immediately; any shortfall must be
    /// rescheduled by the caller. Replenishment for everything consumed is
    /// kicked off asynchronously and completes after the provisioning delay.
    pub fn request(&mut self, evicted: usize, now: SimTime) -> StandbyGrant {
        self.tick(now);
        let granted = evicted.min(self.ready);
        let shortfall = evicted - granted;
        self.ready -= granted;
        // Replenish what was consumed (and any standing deficit vs target).
        let deficit = self
            .target_size
            .saturating_sub(self.ready + self.provisioning.len());
        for _ in 0..deficit {
            self.provisioning.push(now + self.config.provision_time);
        }
        StandbyGrant { granted, shortfall }
    }

    /// Returns cleared machines to the ready pool — over-evicted machines
    /// that passed a background stress-test sweep re-enter as warm standbys
    /// (they are already provisioned; only the sweep stood between them and
    /// the pool). The pool may transiently exceed its target size; the next
    /// `request` simply provisions less.
    pub fn restock(&mut self, machines: usize) {
        self.ready += machines;
    }

    /// Time for granted standbys to join the job (wake from sleep + barrier).
    pub fn awaken_time(&self) -> SimDuration {
        self.config.awaken_time
    }

    /// Time for the caller to reschedule a shortfall machine from scratch.
    pub fn provision_time(&self) -> SimDuration {
        self.config.provision_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> WarmStandbyPool {
        WarmStandbyPool::new(StandbyPoolConfig::for_job(1024, 0.002))
    }

    #[test]
    fn pool_sized_at_p99() {
        let p = pool();
        assert_eq!(p.target_size(), p.config().p99_pool_size());
        assert!(
            p.target_size() >= 3 && p.target_size() <= 10,
            "size = {}",
            p.target_size()
        );
        assert_eq!(p.ready(), p.target_size());
    }

    #[test]
    fn table5_pool_sizes_grow_with_scale() {
        // Table 5 provisions 2, 2, 3, 4 standby machines for 128→1024-machine
        // jobs; the binomial P99 should be small and non-decreasing in scale.
        let sizes: Vec<usize> = [128usize, 256, 512, 1024]
            .iter()
            .map(|&m| StandbyPoolConfig::for_job(m, 0.002).p99_pool_size())
            .collect();
        for pair in sizes.windows(2) {
            assert!(pair[0] <= pair[1], "sizes = {sizes:?}");
        }
        assert!(sizes[0] >= 1 && sizes[3] <= 10, "sizes = {sizes:?}");
    }

    #[test]
    fn request_within_pool_has_no_shortfall() {
        let mut p = pool();
        let grant = p.request(2, SimTime::ZERO);
        assert_eq!(grant.granted, 2);
        assert_eq!(grant.shortfall, 0);
        assert_eq!(p.ready(), p.target_size() - 2);
        assert_eq!(p.in_flight(), 2);
    }

    #[test]
    fn request_beyond_pool_reports_shortfall() {
        let mut p = pool();
        let big = p.target_size() + 30;
        let grant = p.request(big, SimTime::ZERO);
        assert_eq!(grant.granted, p.target_size());
        assert_eq!(grant.shortfall, 30);
        assert_eq!(p.ready(), 0);
    }

    #[test]
    fn replenishment_completes_after_provision_time() {
        let mut p = pool();
        let consumed = p.target_size();
        p.request(consumed, SimTime::ZERO);
        assert_eq!(p.ready(), 0);
        // Before provisioning finishes nothing is ready.
        p.tick(SimTime::ZERO + SimDuration::from_secs(60));
        assert_eq!(p.ready(), 0);
        // After the provisioning delay the pool is full again.
        p.tick(SimTime::ZERO + p.provision_time());
        assert_eq!(p.ready(), consumed);
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    fn restocked_machines_are_immediately_grantable() {
        let mut p = pool();
        let consumed = p.target_size();
        p.request(consumed, SimTime::ZERO);
        assert_eq!(p.ready(), 0);
        // A swept machine returns before provisioning completes and covers
        // the next eviction with no shortfall.
        p.restock(1);
        assert_eq!(p.ready(), 1);
        let grant = p.request(1, SimTime::ZERO + SimDuration::from_secs(30));
        assert_eq!(grant.granted, 1);
        assert_eq!(grant.shortfall, 0);
    }

    #[test]
    fn successive_failures_are_covered_after_replenishment() {
        let mut p = pool();
        let t0 = SimTime::ZERO;
        p.request(1, t0);
        // A second failure one hour later is fully covered.
        let t1 = t0 + SimDuration::from_hours(1);
        let grant = p.request(1, t1);
        assert_eq!(grant.shortfall, 0);
    }
}
