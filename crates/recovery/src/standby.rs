//! Warm-standby machine pool (§6.2).
//!
//! ByteRobust keeps a small pool of pre-provisioned machines — pod environment
//! initialized, self-checked, sleeping in a low-power polling loop — sized at
//! the P99 of the binomial simultaneous-failure distribution. On eviction the
//! controller awakens standbys instead of asking the cluster scheduler for new
//! machines; the pool is replenished asynchronously afterwards.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use byterobust_cluster::MachineId;
use byterobust_sim::{SimDuration, SimTime};

use crate::binomial::binomial_quantile;

/// Sizing and timing parameters for the pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StandbyPoolConfig {
    /// Machines in the training job.
    pub job_machines: usize,
    /// Probability that an individual machine fails within the provisioning
    /// horizon (derived from historical data; §6.2).
    pub per_machine_failure_prob: f64,
    /// Quantile of the simultaneous-failure distribution to provision for.
    pub quantile: f64,
    /// Time to wake a sleeping standby and let it join the job at the next
    /// barrier (§7: the barrier poll loop).
    pub awaken_time: SimDuration,
    /// Time to provision a brand-new standby from the free pool: machine
    /// allocation, image installation, library download, self-check.
    pub provision_time: SimDuration,
}

impl StandbyPoolConfig {
    /// Production-flavoured defaults for a job of `job_machines` machines.
    pub fn for_job(job_machines: usize, per_machine_failure_prob: f64) -> Self {
        StandbyPoolConfig {
            job_machines,
            per_machine_failure_prob,
            quantile: 0.99,
            awaken_time: SimDuration::from_secs(60),
            provision_time: SimDuration::from_secs(420),
        }
    }

    /// The P99 pool size for this configuration.
    pub fn p99_pool_size(&self) -> usize {
        binomial_quantile(
            self.job_machines as u64,
            self.per_machine_failure_prob,
            self.quantile,
        )
        .max(1) as usize
    }
}

/// The result of asking the pool to cover an eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StandbyGrant {
    /// Standbys awakened immediately.
    pub granted: usize,
    /// Machines that still need to be rescheduled from the free pool
    /// (evictions exceeding the ready standbys).
    pub shortfall: usize,
}

/// The warm-standby pool state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmStandbyPool {
    config: StandbyPoolConfig,
    target_size: usize,
    ready: usize,
    /// Completion times of in-flight replenishments.
    provisioning: Vec<SimTime>,
    /// Identities of restocked machines currently sitting in the ready pool.
    /// Freshly provisioned standbys are anonymous; machines returned through
    /// [`WarmStandbyPool::restock`] keep their identity so a double return of
    /// the same machine (e.g. two sweeps both naming it) cannot inflate the
    /// ready count.
    restocked: BTreeSet<MachineId>,
    /// Requests that could not be fully covered by ready standbys.
    shortfall_events: usize,
    /// Machines across all requests that had to be covered outside the pool.
    shortfall_machines: usize,
}

impl WarmStandbyPool {
    /// Creates a pool at its target (P99) size, fully provisioned.
    pub fn new(config: StandbyPoolConfig) -> Self {
        let target = config.p99_pool_size();
        Self::with_target_size(config, target)
    }

    /// Creates a pool with an explicit target size (e.g. a deliberately
    /// under-provisioned pool for starvation drills), fully provisioned.
    pub fn with_target_size(config: StandbyPoolConfig, target: usize) -> Self {
        WarmStandbyPool {
            config,
            target_size: target,
            ready: target,
            provisioning: Vec::new(),
            restocked: BTreeSet::new(),
            shortfall_events: 0,
            shortfall_machines: 0,
        }
    }

    /// The pool's sizing configuration.
    pub fn config(&self) -> &StandbyPoolConfig {
        &self.config
    }

    /// Target (P99) pool size.
    pub fn target_size(&self) -> usize {
        self.target_size
    }

    /// Standbys ready right now.
    pub fn ready(&self) -> usize {
        self.ready
    }

    /// Replenishments still in flight.
    pub fn in_flight(&self) -> usize {
        self.provisioning.len()
    }

    /// Moves completed replenishments into the ready pool as of `now`.
    pub fn tick(&mut self, now: SimTime) {
        let (done, pending): (Vec<SimTime>, Vec<SimTime>) =
            self.provisioning.iter().partition(|&&t| t <= now);
        self.ready += done.len();
        self.provisioning = pending;
    }

    /// Requests standbys to cover `evicted` machines at time `now`.
    ///
    /// Ready standbys are granted immediately; any shortfall must be
    /// rescheduled by the caller. Replenishment for everything consumed is
    /// kicked off asynchronously and completes after the provisioning delay.
    pub fn request(&mut self, evicted: usize, now: SimTime) -> StandbyGrant {
        self.request_with_floor(evicted, now, 0)
    }

    /// Like [`WarmStandbyPool::request`], but never draws the pool below
    /// `floor` ready standbys — a fleet broker holds the last standbys in
    /// reserve for higher-priority jobs, so a lower-priority request sees
    /// them as a shortfall. `floor == 0` is exactly `request`.
    pub fn request_with_floor(
        &mut self,
        evicted: usize,
        now: SimTime,
        floor: usize,
    ) -> StandbyGrant {
        self.tick(now);
        let granted = evicted.min(self.ready.saturating_sub(floor));
        let shortfall = evicted - granted;
        self.ready -= granted;
        if shortfall > 0 {
            self.shortfall_events += 1;
            self.shortfall_machines += shortfall;
        }
        // Granted standbys leave the pool; named restocked members are drawn
        // first (smallest id first, deterministically) so their identities
        // become eligible for a future restock once they are back out in a
        // job.
        for _ in 0..granted.min(self.restocked.len()) {
            let first = *self.restocked.iter().next().expect("non-empty set");
            self.restocked.remove(&first);
        }
        // Replenish what was consumed (and any standing deficit vs target).
        let deficit = self
            .target_size
            .saturating_sub(self.ready + self.provisioning.len());
        for _ in 0..deficit {
            self.provisioning.push(now + self.config.provision_time);
        }
        StandbyGrant { granted, shortfall }
    }

    /// Returns a cleared machine to the ready pool — an over-evicted machine
    /// that passed a background stress-test sweep re-enters as a warm standby
    /// (it is already provisioned; only the sweep stood between it and the
    /// pool). Returns `true` when the machine actually joined, `false` when
    /// it was already sitting in the pool (two sweeps can both name the same
    /// machine; a duplicate return must not inflate the ready count). The
    /// pool may transiently exceed its target size; the next `request` simply
    /// provisions less.
    pub fn restock(&mut self, machine: MachineId) -> bool {
        if !self.restocked.insert(machine) {
            return false;
        }
        self.ready += 1;
        true
    }

    /// Cancels one in-flight replenishment completing exactly at
    /// `completes_at` (a fleet broker reassigning a lower-priority job's
    /// replenishment slot to a starving job). Returns `false` if no such
    /// replenishment is in flight.
    pub fn cancel_provisioning(&mut self, completes_at: SimTime) -> bool {
        match self.provisioning.iter().position(|&t| t == completes_at) {
            Some(index) => {
                self.provisioning.remove(index);
                true
            }
            None => false,
        }
    }

    /// Completion times of in-flight replenishments (sorted ascending).
    pub fn provisioning_times(&self) -> Vec<SimTime> {
        let mut times = self.provisioning.clone();
        times.sort_unstable();
        times
    }

    /// Requests that could not be fully covered by ready standbys so far.
    pub fn shortfall_events(&self) -> usize {
        self.shortfall_events
    }

    /// Total machines across all requests that the pool could not cover.
    pub fn shortfall_machines(&self) -> usize {
        self.shortfall_machines
    }

    /// Time for granted standbys to join the job (wake from sleep + barrier).
    pub fn awaken_time(&self) -> SimDuration {
        self.config.awaken_time
    }

    /// Time for the caller to reschedule a shortfall machine from scratch.
    pub fn provision_time(&self) -> SimDuration {
        self.config.provision_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> WarmStandbyPool {
        WarmStandbyPool::new(StandbyPoolConfig::for_job(1024, 0.002))
    }

    #[test]
    fn pool_sized_at_p99() {
        let p = pool();
        assert_eq!(p.target_size(), p.config().p99_pool_size());
        assert!(
            p.target_size() >= 3 && p.target_size() <= 10,
            "size = {}",
            p.target_size()
        );
        assert_eq!(p.ready(), p.target_size());
    }

    #[test]
    fn table5_pool_sizes_grow_with_scale() {
        // Table 5 provisions 2, 2, 3, 4 standby machines for 128→1024-machine
        // jobs; the binomial P99 should be small and non-decreasing in scale.
        let sizes: Vec<usize> = [128usize, 256, 512, 1024]
            .iter()
            .map(|&m| StandbyPoolConfig::for_job(m, 0.002).p99_pool_size())
            .collect();
        for pair in sizes.windows(2) {
            assert!(pair[0] <= pair[1], "sizes = {sizes:?}");
        }
        assert!(sizes[0] >= 1 && sizes[3] <= 10, "sizes = {sizes:?}");
    }

    #[test]
    fn request_within_pool_has_no_shortfall() {
        let mut p = pool();
        let grant = p.request(2, SimTime::ZERO);
        assert_eq!(grant.granted, 2);
        assert_eq!(grant.shortfall, 0);
        assert_eq!(p.ready(), p.target_size() - 2);
        assert_eq!(p.in_flight(), 2);
    }

    #[test]
    fn request_beyond_pool_reports_shortfall() {
        let mut p = pool();
        let big = p.target_size() + 30;
        let grant = p.request(big, SimTime::ZERO);
        assert_eq!(grant.granted, p.target_size());
        assert_eq!(grant.shortfall, 30);
        assert_eq!(p.ready(), 0);
    }

    #[test]
    fn replenishment_completes_after_provision_time() {
        let mut p = pool();
        let consumed = p.target_size();
        p.request(consumed, SimTime::ZERO);
        assert_eq!(p.ready(), 0);
        // Before provisioning finishes nothing is ready.
        p.tick(SimTime::ZERO + SimDuration::from_secs(60));
        assert_eq!(p.ready(), 0);
        // After the provisioning delay the pool is full again.
        p.tick(SimTime::ZERO + p.provision_time());
        assert_eq!(p.ready(), consumed);
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    fn restocked_machines_are_immediately_grantable() {
        let mut p = pool();
        let consumed = p.target_size();
        p.request(consumed, SimTime::ZERO);
        assert_eq!(p.ready(), 0);
        // A swept machine returns before provisioning completes and covers
        // the next eviction with no shortfall.
        assert!(p.restock(MachineId(7)));
        assert_eq!(p.ready(), 1);
        let grant = p.request(1, SimTime::ZERO + SimDuration::from_secs(30));
        assert_eq!(grant.granted, 1);
        assert_eq!(grant.shortfall, 0);
    }

    #[test]
    fn restock_deduplicates_machines_already_in_the_pool() {
        // Regression: two stress-test sweeps can both clear the same machine
        // (same fleet id implicated by two incidents); returning it twice
        // must not count it as two ready standbys.
        let mut p = pool();
        let consumed = p.target_size();
        p.request(consumed, SimTime::ZERO);
        assert_eq!(p.ready(), 0);
        assert!(p.restock(MachineId(4)), "first return joins the pool");
        assert!(
            !p.restock(MachineId(4)),
            "second return of the same machine is a duplicate"
        );
        assert_eq!(p.ready(), 1, "duplicate restock must not inflate ready");
        assert!(p.restock(MachineId(5)), "a different machine still joins");
        assert_eq!(p.ready(), 2);
        // Once the machine has been drawn back out of the pool it can
        // legitimately return again after a later incident.
        let grant = p.request(2, SimTime::ZERO + SimDuration::from_secs(10));
        assert_eq!(grant.granted, 2);
        assert!(
            p.restock(MachineId(4)),
            "a machine drawn out of the pool can be restocked again"
        );
    }

    #[test]
    fn shortfall_stats_accumulate() {
        let mut p = pool();
        assert_eq!(p.shortfall_events(), 0);
        let big = p.target_size() + 5;
        p.request(big, SimTime::ZERO);
        assert_eq!(p.shortfall_events(), 1);
        assert_eq!(p.shortfall_machines(), 5);
        // A covered request leaves the stats untouched.
        p.tick(SimTime::ZERO + p.provision_time());
        p.request(1, SimTime::ZERO + p.provision_time());
        assert_eq!(p.shortfall_events(), 1);
        assert_eq!(p.shortfall_machines(), 5);
    }

    #[test]
    fn reserve_floor_holds_back_the_last_standbys() {
        let mut p = pool();
        let target = p.target_size();
        // A low-priority request against a floor of 1 leaves one standby
        // ready and reports the held-back machine as a shortfall.
        let grant = p.request_with_floor(target, SimTime::ZERO, 1);
        assert_eq!(grant.granted, target - 1);
        assert_eq!(grant.shortfall, 1);
        assert_eq!(p.ready(), 1);
        // The reserved standby is still grantable to a floor-exempt request.
        let grant = p.request(1, SimTime::ZERO);
        assert_eq!(grant.granted, 1);
        assert_eq!(grant.shortfall, 0);
        // A floor above the ready count grants nothing.
        let grant = p.request_with_floor(1, SimTime::ZERO, target + 5);
        assert_eq!(grant.granted, 0);
        assert_eq!(grant.shortfall, 1);
    }

    #[test]
    fn cancel_provisioning_removes_one_slot() {
        let mut p = pool();
        p.request(2, SimTime::ZERO);
        assert_eq!(p.in_flight(), 2);
        let completes = p.provisioning_times()[0];
        assert!(p.cancel_provisioning(completes));
        assert_eq!(p.in_flight(), 1);
        // Cancelling a time with no matching slot is a no-op.
        assert!(!p.cancel_provisioning(SimTime::from_secs(1)));
        assert_eq!(p.in_flight(), 1);
    }

    #[test]
    fn successive_failures_are_covered_after_replenishment() {
        let mut p = pool();
        let t0 = SimTime::ZERO;
        p.request(1, t0);
        // A second failure one hour later is fully covered.
        let t1 = t0 + SimDuration::from_hours(1);
        let grant = p.request(1, t1);
        assert_eq!(grant.shortfall, 0);
    }
}
