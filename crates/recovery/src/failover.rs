//! Failover cost accounting (Fig. 3).
//!
//! The unproductive time of an incident decomposes into detection,
//! localization, and failover; failover itself decomposes into scheduling
//! replacement machines, rebuilding pod environments, loading the latest
//! checkpoint, and recomputing the training progress lost since that
//! checkpoint. This module aggregates those pieces so the lifecycle driver
//! and the Fig. 3 bench can report the same breakdown the paper shows.

use serde::{Deserialize, Serialize};

use byterobust_sim::SimDuration;

/// Breakdown of one incident's unproductive time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FailoverCost {
    /// Time from the fault occurring to the system noticing it.
    pub detection: SimDuration,
    /// Time spent locating / isolating the faulty machines (stop-time checks,
    /// aggregation analysis, replay).
    pub localization: SimDuration,
    /// Time spent scheduling replacement machines (or awakening standbys, or
    /// performing the in-place restart).
    pub scheduling: SimDuration,
    /// Time spent rebuilding pod environments (zero for hot updates and
    /// warm standbys, whose pods are pre-built).
    pub pod_build: SimDuration,
    /// Time spent loading the checkpoint.
    pub checkpoint_load: SimDuration,
    /// Time spent recomputing the steps lost since the restored checkpoint.
    pub recompute: SimDuration,
}

impl FailoverCost {
    /// Total unproductive time of the incident.
    pub fn total(&self) -> SimDuration {
        self.detection
            + self.localization
            + self.scheduling
            + self.pod_build
            + self.checkpoint_load
            + self.recompute
    }

    /// The failover portion only (excluding detection and localization), as
    /// decomposed in Fig. 3.
    pub fn failover_only(&self) -> SimDuration {
        self.scheduling + self.pod_build + self.checkpoint_load + self.recompute
    }

    /// Merges two cost records (e.g. a failed recovery attempt followed by a
    /// successful one) by summing each component.
    pub fn merge(&self, other: &FailoverCost) -> FailoverCost {
        FailoverCost {
            detection: self.detection + other.detection,
            localization: self.localization + other.localization,
            scheduling: self.scheduling + other.scheduling,
            pod_build: self.pod_build + other.pod_build,
            checkpoint_load: self.checkpoint_load + other.checkpoint_load,
            recompute: self.recompute + other.recompute,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> FailoverCost {
        FailoverCost {
            detection: SimDuration::from_secs(30),
            localization: SimDuration::from_secs(300),
            scheduling: SimDuration::from_secs(60),
            pod_build: SimDuration::from_secs(0),
            checkpoint_load: SimDuration::from_secs(45),
            recompute: SimDuration::from_secs(15),
        }
    }

    #[test]
    fn total_is_sum_of_components() {
        assert_eq!(cost().total(), SimDuration::from_secs(450));
        assert_eq!(cost().failover_only(), SimDuration::from_secs(120));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(FailoverCost::default().total(), SimDuration::ZERO);
    }

    #[test]
    fn merge_sums_components() {
        let merged = cost().merge(&cost());
        assert_eq!(merged.total(), SimDuration::from_secs(900));
        assert_eq!(merged.detection, SimDuration::from_secs(60));
    }
}
