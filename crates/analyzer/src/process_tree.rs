//! Per-pod process-tree parsing (step 1 of the aggregation analysis, Fig. 7).
//!
//! Root causes of implicit failures may live in subprocesses spawned by the
//! main training process — data-loader workers, checkpoint I/O workers — so
//! the analyzer must identify every training-related process before asking
//! for its stack, and must *exclude* unrelated processes (the robust daemon
//! itself, for instance) from the aggregation.

use serde::{Deserialize, Serialize};

use byterobust_trainsim::{ProcessKind, StackTrace};

/// A node in the reconstructed per-pod process tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessNode {
    /// Kind of process.
    pub kind: ProcessKind,
    /// Command line as it would appear in the process table.
    pub command: String,
    /// Child processes.
    pub children: Vec<ProcessNode>,
}

impl ProcessNode {
    fn leaf(kind: ProcessKind) -> Self {
        ProcessNode {
            kind,
            command: kind.command().to_string(),
            children: Vec::new(),
        }
    }

    /// Total number of nodes in this subtree (including self).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ProcessNode::size).sum::<usize>()
    }
}

/// The canonical per-pod process tree: the launch script forks the robust
/// daemon and spawns the training worker, which in turn forks data-I/O and
/// checkpoint workers (Fig. 7, step 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessTree {
    /// Root of the tree (the pod's launch script).
    pub root: ProcessNode,
}

impl ProcessTree {
    /// Builds the canonical pod process tree.
    pub fn canonical() -> Self {
        let trainer = ProcessNode {
            kind: ProcessKind::Trainer,
            command: ProcessKind::Trainer.command().to_string(),
            children: vec![
                ProcessNode::leaf(ProcessKind::DataLoader),
                ProcessNode::leaf(ProcessKind::CheckpointWorker),
            ],
        };
        let root = ProcessNode {
            kind: ProcessKind::RobustDaemon,
            command: "python3 launch.sh".to_string(),
            children: vec![ProcessNode::leaf(ProcessKind::RobustDaemon), trainer],
        };
        ProcessTree { root }
    }

    /// The process kinds whose stacks participate in aggregation analysis:
    /// everything training-related, excluding the robust daemon.
    pub fn training_related_kinds() -> [ProcessKind; 3] {
        [
            ProcessKind::Trainer,
            ProcessKind::DataLoader,
            ProcessKind::CheckpointWorker,
        ]
    }

    /// Whether a process kind is training-related (participates in
    /// aggregation).
    pub fn is_training_related(kind: ProcessKind) -> bool {
        Self::training_related_kinds().contains(&kind)
    }

    /// Filters a set of captured stacks down to the training-related ones.
    pub fn filter_training_stacks(stacks: &[StackTrace]) -> Vec<&StackTrace> {
        stacks
            .iter()
            .filter(|s| Self::is_training_related(s.process))
            .collect()
    }

    /// Total number of processes in the canonical tree.
    pub fn process_count(&self) -> usize {
        self.root.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byterobust_parallelism::Rank;
    use byterobust_trainsim::{StackTraceGenerator, TrainPhase};

    #[test]
    fn canonical_tree_shape() {
        let tree = ProcessTree::canonical();
        // launch.sh + daemon + trainer + dataloader + ckpt worker = 5 nodes.
        assert_eq!(tree.process_count(), 5);
        assert_eq!(tree.root.children.len(), 2);
    }

    #[test]
    fn daemon_excluded_from_training_related() {
        assert!(ProcessTree::is_training_related(ProcessKind::Trainer));
        assert!(ProcessTree::is_training_related(ProcessKind::DataLoader));
        assert!(ProcessTree::is_training_related(
            ProcessKind::CheckpointWorker
        ));
        assert!(!ProcessTree::is_training_related(ProcessKind::RobustDaemon));
    }

    #[test]
    fn filter_drops_daemon_stacks() {
        let g = StackTraceGenerator::new();
        let stacks = vec![
            g.trainer_stack(Rank(0), TrainPhase::GradReduceScatter),
            g.dataloader_stack(Rank(0), false),
            g.daemon_stack(Rank(0)),
            g.checkpoint_worker_stack(Rank(0), false),
        ];
        let filtered = ProcessTree::filter_training_stacks(&stacks);
        assert_eq!(filtered.len(), 3);
        assert!(filtered
            .iter()
            .all(|s| s.process != ProcessKind::RobustDaemon));
    }
}
