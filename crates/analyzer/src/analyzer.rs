//! The Runtime Analyzer facade.
//!
//! Ties the three aggregation steps together and exposes the two entry points
//! the Robust Controller uses:
//!
//! * [`RuntimeAnalyzer::analyze_hang`] — one-shot analysis for job hangs and
//!   NCCL-timeout style incidents,
//! * [`RuntimeAnalyzer::analyze_fail_slow`] — repeated-round analysis for MFU
//!   decline incidents.
//!
//! Both return an [`EvictionDecision`] plus the time the analysis took, which
//! the controller charges against the incident's unproductive time.

use serde::{Deserialize, Serialize};

use byterobust_parallelism::ParallelTopology;
use byterobust_sim::SimDuration;
use byterobust_trainsim::StackTrace;

use crate::aggregation::AggregationResult;
use crate::eviction::EvictionDecision;
use crate::failslow::FailSlowVoter;

/// Analyzer tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyzerConfig {
    /// Dominance ratio for outlier classification.
    pub dominance_ratio: f64,
    /// Time to capture stacks from every pod and ship them to the analyzer
    /// (py-spy sampling plus upload; tens of seconds in production).
    pub capture_latency: SimDuration,
    /// Time to run the aggregation itself.
    pub aggregation_latency: SimDuration,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            dominance_ratio: AggregationResult::DEFAULT_DOMINANCE_RATIO,
            capture_latency: SimDuration::from_secs(30),
            aggregation_latency: SimDuration::from_secs(5),
        }
    }
}

/// Result of one analyzer invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisOutcome {
    /// The aggregation clusters (for observability / the event log).
    pub aggregation: AggregationResult,
    /// The recommended eviction.
    pub decision: EvictionDecision,
    /// How long the analysis took (charged as unproductive localization time).
    pub duration: SimDuration,
}

/// The Runtime Analyzer (control-plane component, §3).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RuntimeAnalyzer {
    /// Configuration.
    pub config: AnalyzerConfig,
}

impl RuntimeAnalyzer {
    /// Creates an analyzer with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an analyzer with a custom configuration.
    pub fn with_config(config: AnalyzerConfig) -> Self {
        RuntimeAnalyzer { config }
    }

    /// One-shot hang analysis: aggregate one stack capture and over-evict the
    /// shared parallel group of the outliers.
    pub fn analyze_hang(
        &self,
        topology: &ParallelTopology,
        stacks: &[StackTrace],
    ) -> AnalysisOutcome {
        let aggregation =
            AggregationResult::aggregate_with_ratio(stacks, self.config.dominance_ratio);
        let decision = EvictionDecision::from_outliers(topology, &aggregation.outlier_ranks());
        AnalysisOutcome {
            aggregation,
            decision,
            duration: self.config.capture_latency + self.config.aggregation_latency,
        }
    }

    /// Repeated-round fail-slow analysis: each element of `round_captures` is
    /// one stack capture taken 10 s apart; the verdict is the group with the
    /// most cumulative flags.
    pub fn analyze_fail_slow(
        &self,
        topology: &ParallelTopology,
        round_captures: &[Vec<StackTrace>],
    ) -> AnalysisOutcome {
        let mut voter = FailSlowVoter::new();
        let mut last_aggregation = AggregationResult::aggregate(&[]);
        for capture in round_captures {
            let aggregation =
                AggregationResult::aggregate_with_ratio(capture, self.config.dominance_ratio);
            voter.record_round(topology, &aggregation.outlier_ranks());
            last_aggregation = aggregation;
        }
        let decision = voter.verdict(topology);
        let duration = self.config.capture_latency
            + voter.round_interval.mul(round_captures.len() as u64)
            + self.config.aggregation_latency;
        AnalysisOutcome {
            aggregation: last_aggregation,
            decision,
            duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byterobust_cluster::MachineId;
    use byterobust_trainsim::{JobSpec, TrainingRuntime};

    #[test]
    fn hang_analysis_isolates_victim_within_a_group() {
        let mut rt = TrainingRuntime::new(JobSpec::small_test());
        let victim = MachineId(7);
        rt.inject_hang(vec![victim]);
        let analyzer = RuntimeAnalyzer::new();
        let outcome = analyzer.analyze_hang(rt.topology(), &rt.capture_stacks());
        assert!(!outcome.decision.is_empty());
        assert!(
            outcome.decision.machines.contains(&victim),
            "victim must be in the eviction set"
        );
        assert!(outcome.duration >= SimDuration::from_secs(30));
        // Over-eviction stays bounded: far fewer machines than the job.
        assert!(outcome.decision.machines.len() <= rt.job().machines() / 2);
    }

    #[test]
    fn healthy_capture_evicts_nothing() {
        let rt = TrainingRuntime::new(JobSpec::small_test());
        let analyzer = RuntimeAnalyzer::new();
        let outcome = analyzer.analyze_hang(rt.topology(), &rt.capture_stacks());
        assert!(outcome.decision.is_empty());
    }

    #[test]
    fn fail_slow_analysis_finds_persistent_degrader() {
        let mut rt = TrainingRuntime::new(JobSpec::small_test());
        let victim = MachineId(2);
        rt.inject_fail_slow(vec![victim], 3.0);
        let analyzer = RuntimeAnalyzer::new();
        let captures: Vec<Vec<_>> = (0..5).map(|_| rt.capture_stacks()).collect();
        let outcome = analyzer.analyze_fail_slow(rt.topology(), &captures);
        assert!(outcome.decision.machines.contains(&victim));
        // 5 rounds at 10s plus capture and aggregation latency.
        assert!(outcome.duration >= SimDuration::from_secs(50));
    }

    #[test]
    fn fail_slow_with_no_rounds_evicts_nothing() {
        let rt = TrainingRuntime::new(JobSpec::small_test());
        let analyzer = RuntimeAnalyzer::new();
        let outcome = analyzer.analyze_fail_slow(rt.topology(), &[]);
        assert!(outcome.decision.is_empty());
    }
}
