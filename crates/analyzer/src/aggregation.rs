//! Stack-trace aggregation and outlier identification (step 2 of Fig. 7).
//!
//! Stacks are grouped by exact fingerprint (string matching) within each
//! process kind. Under a single implicit failure most healthy ranks show the
//! identical stack, so the dominant group(s) are deemed healthy and every
//! remaining group is an outlier.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use byterobust_parallelism::Rank;
use byterobust_trainsim::{ProcessKind, StackTrace};

use crate::process_tree::ProcessTree;

/// A group of ranks whose processes show the same stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackCluster {
    /// Process kind the stacks were captured from.
    pub process: ProcessKind,
    /// Canonical stack fingerprint shared by the group.
    pub fingerprint: String,
    /// Ranks in the group, ascending, deduplicated.
    pub ranks: Vec<Rank>,
}

impl StackCluster {
    /// Number of distinct ranks in the group.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }
}

/// The outcome of aggregating one trace capture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationResult {
    /// All clusters, largest first.
    pub clusters: Vec<StackCluster>,
    /// Fraction of the largest same-process cluster below which a cluster is
    /// considered an outlier.
    pub dominance_ratio: f64,
}

impl AggregationResult {
    /// Default dominance ratio: a cluster at least half the size of the
    /// largest cluster of the same process kind is considered healthy.
    pub const DEFAULT_DOMINANCE_RATIO: f64 = 0.5;

    /// Aggregates captured stacks. Only training-related processes are
    /// considered (the robust daemon is excluded per the process-tree parse).
    pub fn aggregate(stacks: &[StackTrace]) -> Self {
        Self::aggregate_with_ratio(stacks, Self::DEFAULT_DOMINANCE_RATIO)
    }

    /// Aggregates with an explicit dominance ratio.
    ///
    /// Grouping happens on the 64-bit interned fingerprint
    /// ([`StackTrace::fingerprint_hash`]), so the per-capture hot path hashes
    /// each stack without allocating; the display fingerprint string is
    /// rendered once per *cluster* from a representative stack, not once per
    /// rank.
    pub fn aggregate_with_ratio(stacks: &[StackTrace], dominance_ratio: f64) -> Self {
        let relevant = ProcessTree::filter_training_stacks(stacks);
        let mut groups: BTreeMap<(ProcessKind, u64), (&StackTrace, Vec<Rank>)> = BTreeMap::new();
        for stack in relevant {
            let key = (stack.process, stack.fingerprint_hash());
            groups
                .entry(key)
                .or_insert_with(|| (stack, Vec::new()))
                .1
                .push(stack.rank);
        }
        let mut clusters: Vec<StackCluster> = groups
            .into_values()
            .map(|(representative, mut ranks)| {
                ranks.sort();
                ranks.dedup();
                StackCluster {
                    process: representative.process,
                    fingerprint: representative.fingerprint(),
                    ranks,
                }
            })
            .collect();
        clusters.sort_by(|a, b| {
            b.size()
                .cmp(&a.size())
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        AggregationResult {
            clusters,
            dominance_ratio,
        }
    }

    /// Size of the largest cluster of a given process kind.
    fn max_size_for(&self, process: ProcessKind) -> usize {
        self.clusters
            .iter()
            .filter(|c| c.process == process)
            .map(StackCluster::size)
            .max()
            .unwrap_or(0)
    }

    /// Whether a cluster is dominant (healthy) relative to the largest cluster
    /// of the same process kind.
    pub fn is_dominant(&self, cluster: &StackCluster) -> bool {
        let max = self.max_size_for(cluster.process);
        max > 0 && cluster.size() as f64 >= self.dominance_ratio * max as f64
    }

    /// Clusters deemed healthy.
    pub fn dominant_clusters(&self) -> Vec<&StackCluster> {
        self.clusters
            .iter()
            .filter(|c| self.is_dominant(c))
            .collect()
    }

    /// Clusters deemed outliers.
    pub fn outlier_clusters(&self) -> Vec<&StackCluster> {
        self.clusters
            .iter()
            .filter(|c| !self.is_dominant(c))
            .collect()
    }

    /// Distinct ranks appearing in any outlier cluster, ascending.
    pub fn outlier_ranks(&self) -> Vec<Rank> {
        let mut ranks: Vec<Rank> = self
            .outlier_clusters()
            .iter()
            .flat_map(|c| c.ranks.iter().copied())
            .collect();
        ranks.sort();
        ranks.dedup();
        ranks
    }

    /// Whether the capture contains any outlier at all.
    pub fn has_outliers(&self) -> bool {
        self.clusters.iter().any(|c| !self.is_dominant(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byterobust_cluster::MachineId;
    use byterobust_trainsim::{JobSpec, TrainingRuntime};

    #[test]
    fn healthy_job_has_no_outliers() {
        let rt = TrainingRuntime::new(JobSpec::small_test());
        let result = AggregationResult::aggregate(&rt.capture_stacks());
        assert!(!result.has_outliers());
        assert!(result.outlier_ranks().is_empty());
        // One trainer cluster + one dataloader cluster + one ckpt cluster.
        assert_eq!(result.clusters.len(), 3);
    }

    #[test]
    fn hang_produces_outlier_clusters() {
        let mut rt = TrainingRuntime::new(JobSpec::small_test());
        rt.inject_hang(vec![MachineId(5)]);
        let result = AggregationResult::aggregate(&rt.capture_stacks());
        assert!(result.has_outliers());
        let outliers = result.outlier_ranks();
        // The victim machine's ranks must be among the outliers.
        let victim_ranks = rt.topology().mapping().ranks_on_machine(MachineId(5));
        for r in &victim_ranks {
            assert!(outliers.contains(r), "victim {r} missing from outliers");
        }
        // The outliers are a small minority of the world.
        assert!(outliers.len() <= rt.job().world_size() / 4);
    }

    #[test]
    fn fig7_cluster_structure() {
        // Reproduce the Fig. 7 scenario: TP=2, PP=4, DP=4 over 16 machines,
        // machine 15 (last pipeline stage) hangs.
        let job = JobSpec {
            parallelism: byterobust_parallelism::ParallelismConfig::fig7_example(),
            ..JobSpec::small_test()
        };
        let mut rt = TrainingRuntime::new(job);
        rt.inject_hang(vec![MachineId(15)]);
        let result = AggregationResult::aggregate(&rt.capture_stacks());
        let trainer_clusters: Vec<&StackCluster> = result
            .clusters
            .iter()
            .filter(|c| c.process == ProcessKind::Trainer)
            .collect();
        // Expect: one dominant grad-sync cluster, one backward (victim)
        // cluster, and pipeline-comm clusters (isend + irecv).
        assert!(
            trainer_clusters.len() >= 3,
            "got {} clusters",
            trainer_clusters.len()
        );
        let dominant = &trainer_clusters[0];
        assert!(dominant.fingerprint.contains("start_grad_sync"));
        assert!(result.is_dominant(dominant));
        let outlier_fps: Vec<&str> = result
            .outlier_clusters()
            .iter()
            .filter(|c| c.process == ProcessKind::Trainer)
            .map(|c| c.fingerprint.as_str())
            .collect();
        assert!(outlier_fps
            .iter()
            .any(|f| f.contains("all_gather_into_tensor")));
        assert!(outlier_fps
            .iter()
            .any(|f| f.contains("isend") || f.contains("irecv")));
    }

    #[test]
    fn dominance_ratio_controls_sensitivity() {
        let mut rt = TrainingRuntime::new(JobSpec::small_test());
        rt.inject_hang(vec![MachineId(2)]);
        let stacks = rt.capture_stacks();
        // With a ratio of 0.0 every non-empty cluster is dominant → no outliers.
        let lenient = AggregationResult::aggregate_with_ratio(&stacks, 0.0);
        assert!(!lenient.has_outliers());
        let strict = AggregationResult::aggregate_with_ratio(&stacks, 0.5);
        assert!(strict.has_outliers());
    }

    #[test]
    fn clusters_sorted_largest_first() {
        let mut rt = TrainingRuntime::new(JobSpec::small_test());
        rt.inject_hang(vec![MachineId(0)]);
        let result = AggregationResult::aggregate(&rt.capture_stacks());
        for pair in result.clusters.windows(2) {
            assert!(pair[0].size() >= pair[1].size());
        }
    }
}
