//! Repeated-round voting for fail-slow (MFU decline) incidents.
//!
//! For fail-slow incidents ByteRobust repeats the aggregation every 10
//! seconds, flags the parallel group with the most outliers in each round,
//! and after 5 rounds evicts the group with the highest cumulative flag count
//! (§5.1). The repeated vote filters out transient stragglers that a single
//! snapshot would misattribute.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use byterobust_parallelism::{GroupKind, ParallelTopology, Rank};
use byterobust_sim::SimDuration;

use crate::eviction::EvictionDecision;

/// Accumulates per-round flags and produces a final eviction decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailSlowVoter {
    /// Interval between aggregation rounds (paper: 10 seconds).
    pub round_interval: SimDuration,
    /// Number of rounds before a verdict (paper: 5).
    pub rounds_required: u32,
    rounds_done: u32,
    /// Cumulative flag count per (group kind, group index).
    flags: HashMap<(GroupKind, usize), u32>,
}

impl Default for FailSlowVoter {
    fn default() -> Self {
        Self::new()
    }
}

impl FailSlowVoter {
    /// Creates a voter with the paper's parameters (10 s × 5 rounds).
    pub fn new() -> Self {
        FailSlowVoter {
            round_interval: SimDuration::from_secs(10),
            rounds_required: 5,
            rounds_done: 0,
            flags: HashMap::new(),
        }
    }

    /// Number of rounds recorded so far.
    pub fn rounds_done(&self) -> u32 {
        self.rounds_done
    }

    /// Whether enough rounds have been recorded to produce a verdict.
    pub fn is_complete(&self) -> bool {
        self.rounds_done >= self.rounds_required
    }

    /// Total diagnosis time once complete.
    pub fn total_duration(&self) -> SimDuration {
        self.round_interval.mul(self.rounds_required as u64)
    }

    /// Records one aggregation round: flags the parallel group containing the
    /// most outlier ranks this round (ties broken toward the smaller group
    /// kind ordering TP < PP < DP for determinism).
    pub fn record_round(&mut self, topology: &ParallelTopology, outliers: &[Rank]) {
        self.rounds_done += 1;
        if outliers.is_empty() {
            return;
        }
        // Count outliers per group across all dense group kinds; flag the max.
        let mut best: Option<((GroupKind, usize), usize)> = None;
        for &kind in &GroupKind::DENSE {
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for &r in outliers {
                *counts.entry(topology.group_index_of(r, kind)).or_insert(0) += 1;
            }
            for (idx, count) in counts {
                let candidate = ((kind, idx), count);
                best = match best {
                    None => Some(candidate),
                    Some(current) if candidate.1 > current.1 => Some(candidate),
                    other => other,
                };
            }
        }
        if let Some((key, _)) = best {
            *self.flags.entry(key).or_insert(0) += 1;
        }
    }

    /// The verdict after the required rounds: the group with the highest
    /// cumulative flag count, expressed as an eviction decision. Returns an
    /// empty decision if no group was ever flagged.
    pub fn verdict(&self, topology: &ParallelTopology) -> EvictionDecision {
        let Some((&(kind, index), _)) = self.flags.iter().max_by_key(|(&(kind, idx), &count)| {
            // Deterministic tie-break: count, then kind order, then index.
            let kind_order = match kind {
                GroupKind::Tensor => 0,
                GroupKind::Pipeline => 1,
                GroupKind::Data => 2,
                GroupKind::Expert => 3,
            };
            (count, std::cmp::Reverse(kind_order), std::cmp::Reverse(idx))
        }) else {
            return EvictionDecision::none();
        };
        // Find a representative rank of that group to materialize it.
        let representative = topology
            .mapping()
            .all_ranks()
            .find(|&r| topology.group_index_of(r, kind) == index)
            .expect("group index must correspond to at least one rank");
        let group = topology.group_of(representative, kind);
        let machines = topology.machines_of_group(&group);
        EvictionDecision {
            machines,
            shared_group: Some(kind),
            outlier_ranks: group.ranks,
            over_evicts: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byterobust_cluster::MachineId;
    use byterobust_parallelism::ParallelismConfig;

    fn topo() -> ParallelTopology {
        ParallelTopology::new(ParallelismConfig::fig7_example())
    }

    #[test]
    fn five_rounds_complete_in_50_seconds() {
        let voter = FailSlowVoter::new();
        assert_eq!(voter.total_duration(), SimDuration::from_secs(50));
        assert!(!voter.is_complete());
    }

    #[test]
    fn consistent_straggler_gets_its_group_evicted() {
        let topo = topo();
        let mut voter = FailSlowVoter::new();
        // Machine 4 (ranks 8, 9) is consistently slow in every round.
        for _ in 0..5 {
            voter.record_round(&topo, &[Rank(8), Rank(9)]);
        }
        assert!(voter.is_complete());
        let verdict = voter.verdict(&topo);
        assert!(!verdict.is_empty());
        assert!(verdict.machines.contains(&MachineId(4)));
        assert!(verdict.over_evicts);
    }

    #[test]
    fn transient_straggler_outvoted_by_persistent_one() {
        let topo = topo();
        let mut voter = FailSlowVoter::new();
        // One round a random other rank looks slow; the real degrader (rank 20,
        // machine 10) is flagged in the remaining four rounds.
        voter.record_round(&topo, &[Rank(3)]);
        for _ in 0..4 {
            voter.record_round(&topo, &[Rank(20), Rank(21)]);
        }
        let verdict = voter.verdict(&topo);
        assert!(verdict.machines.contains(&MachineId(10)));
        assert!(!verdict.machines.contains(&MachineId(1)));
    }

    #[test]
    fn no_outliers_no_verdict() {
        let topo = topo();
        let mut voter = FailSlowVoter::new();
        for _ in 0..5 {
            voter.record_round(&topo, &[]);
        }
        assert!(voter.is_complete());
        assert!(voter.verdict(&topo).is_empty());
    }

    #[test]
    fn verdict_is_deterministic_under_ties() {
        let topo = topo();
        let mut a = FailSlowVoter::new();
        let mut b = FailSlowVoter::new();
        for voter in [&mut a, &mut b] {
            voter.record_round(&topo, &[Rank(0), Rank(1)]);
            voter.record_round(&topo, &[Rank(8), Rank(9)]);
            voter.record_round(&topo, &[Rank(0), Rank(1)]);
            voter.record_round(&topo, &[Rank(8), Rank(9)]);
            voter.record_round(&topo, &[]);
        }
        assert_eq!(a.verdict(&topo), b.verdict(&topo));
    }
}
