//! Runtime Analyzer: data-driven over-eviction from stack-trace aggregation
//! (§5 of the paper).
//!
//! When the monitor detects an implicit failure — a job hang or an MFU
//! decline — there is no log line or exit code pointing at a machine. The
//! analyzer instead asks the on-demand tracer for the stack traces of every
//! training-related process, clusters them by string matching, treats the
//! dominant clusters as healthy, maps the outlier ranks to machines, finds the
//! parallel group those outliers share, and evicts that whole group rather
//! than chasing the exact root cause.
//!
//! The three steps of Fig. 7 map onto the modules here:
//!
//! 1. [`process_tree`] — parse the per-pod process tree to identify
//!    training-related processes,
//! 2. [`aggregation`] — aggregate stack traces into groups by fingerprint and
//!    split them into dominant (healthy) and outlier groups,
//! 3. [`eviction`] — find the outliers' shared parallel group and produce the
//!    over-eviction decision.
//!
//! [`failslow`] adds the repeated-round vote used for MFU-decline incidents,
//! and [`RuntimeAnalyzer`] ties everything together.

pub mod aggregation;
pub mod analyzer;
pub mod eviction;
pub mod failslow;
pub mod process_tree;

pub use aggregation::{AggregationResult, StackCluster};
pub use analyzer::{AnalyzerConfig, RuntimeAnalyzer};
pub use eviction::EvictionDecision;
pub use failslow::FailSlowVoter;
pub use process_tree::{ProcessNode, ProcessTree};

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::aggregation::{AggregationResult, StackCluster};
    pub use crate::analyzer::{AnalyzerConfig, RuntimeAnalyzer};
    pub use crate::eviction::EvictionDecision;
    pub use crate::failslow::FailSlowVoter;
    pub use crate::process_tree::{ProcessNode, ProcessTree};
}
