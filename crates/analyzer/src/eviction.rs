//! Over-eviction decisions (step 3 of Fig. 7).
//!
//! Given the outlier ranks from the aggregation step, the analyzer maps them
//! to machines, finds the parallel group they share, and recommends evicting
//! every machine of that group — deliberately over-evicting a few healthy
//! machines in exchange for fast, confident isolation (§5.1, §9).

use serde::{Deserialize, Serialize};

use byterobust_cluster::MachineId;
use byterobust_parallelism::{GroupKind, ParallelTopology, Rank};

/// The analyzer's recommendation after analysing one implicit failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictionDecision {
    /// Machines to evict, ascending, deduplicated.
    pub machines: Vec<MachineId>,
    /// The parallel-group kind the outliers shared, if a single group was
    /// identified (the usual case).
    pub shared_group: Option<GroupKind>,
    /// The outlier ranks the decision was derived from.
    pub outlier_ranks: Vec<Rank>,
    /// Whether the decision over-evicts (i.e. includes machines that hosted
    /// no outlier rank).
    pub over_evicts: bool,
}

impl EvictionDecision {
    /// No machines to evict (no outliers found).
    pub fn none() -> Self {
        EvictionDecision {
            machines: Vec::new(),
            shared_group: None,
            outlier_ranks: Vec::new(),
            over_evicts: false,
        }
    }

    /// Whether the decision evicts anything.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Derives a decision from outlier ranks.
    ///
    /// If all outliers share a parallel group, the whole group's machines are
    /// evicted (over-eviction). If they do not — for example when several
    /// independent anomalies coincide — the decision falls back to evicting
    /// only the machines hosting outlier ranks.
    pub fn from_outliers(topology: &ParallelTopology, outliers: &[Rank]) -> Self {
        if outliers.is_empty() {
            return Self::none();
        }
        let mapping = topology.mapping();
        match topology.shared_group_of_ranks(outliers) {
            Some(group) => {
                let machines = topology.machines_of_group(&group);
                let outlier_machines = mapping.machines_of_ranks(outliers);
                let over_evicts = machines.iter().any(|m| !outlier_machines.contains(m));
                EvictionDecision {
                    machines,
                    shared_group: Some(group.kind),
                    outlier_ranks: outliers.to_vec(),
                    over_evicts,
                }
            }
            None => {
                let machines = mapping.machines_of_ranks(outliers);
                EvictionDecision {
                    machines,
                    shared_group: None,
                    outlier_ranks: outliers.to_vec(),
                    over_evicts: false,
                }
            }
        }
    }

    /// Number of machines evicted.
    pub fn eviction_count(&self) -> usize {
        self.machines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byterobust_parallelism::ParallelismConfig;

    fn fig7_topology() -> ParallelTopology {
        ParallelTopology::new(ParallelismConfig::fig7_example())
    }

    #[test]
    fn empty_outliers_evict_nothing() {
        let topo = fig7_topology();
        let d = EvictionDecision::from_outliers(&topo, &[]);
        assert!(d.is_empty());
        assert_eq!(d, EvictionDecision::none());
    }

    #[test]
    fn fig7_outliers_evict_whole_pp_group() {
        let topo = fig7_topology();
        // Outliers sharing the PP group {6, 14, 22, 30} (machines 3, 7, 11, 15).
        let outliers = [Rank(14), Rank(22), Rank(30)];
        let d = EvictionDecision::from_outliers(&topo, &outliers);
        assert_eq!(d.shared_group, Some(GroupKind::Pipeline));
        assert_eq!(
            d.machines,
            vec![MachineId(3), MachineId(7), MachineId(11), MachineId(15)]
        );
        // Machine 3 hosted no outlier: this is an over-eviction.
        assert!(d.over_evicts);
        assert_eq!(d.eviction_count(), 4);
    }

    #[test]
    fn single_outlier_evicts_its_smallest_group() {
        let topo = fig7_topology();
        let d = EvictionDecision::from_outliers(&topo, &[Rank(9)]);
        // The smallest group containing rank 9 is its TP group (machine-local).
        assert_eq!(d.shared_group, Some(GroupKind::Tensor));
        assert_eq!(d.machines, vec![MachineId(4)]);
        assert!(!d.over_evicts);
    }

    #[test]
    fn disjoint_outliers_fall_back_to_their_machines() {
        let topo = fig7_topology();
        // Ranks 0 and 31 share no group.
        let d = EvictionDecision::from_outliers(&topo, &[Rank(0), Rank(31)]);
        assert_eq!(d.shared_group, None);
        assert_eq!(d.machines, vec![MachineId(0), MachineId(15)]);
        assert!(!d.over_evicts);
    }
}
