//! # ByteRobust-RS
//!
//! A Rust reproduction of **"Robust LLM Training Infrastructure at ByteDance"**
//! (ByteRobust, SOSP 2025). The workspace implements the paper's control plane
//! — automated fault tolerance, data-driven over-eviction, and controlled swift
//! recovery — together with every substrate it depends on (cluster model, fault
//! injector, 3D-parallel training workload model, telemetry, checkpointing, and
//! scheduling), all driven by a deterministic discrete-event simulator.
//!
//! This umbrella crate re-exports the individual crates so applications can
//! depend on a single `byterobust` crate:
//!
//! ```
//! use byterobust::prelude::*;
//!
//! let config = JobConfig::small_test();
//! let report = JobLifecycle::new(config, 7).run();
//! assert!(report.ettr.cumulative_ettr() > 0.5);
//! ```
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use byterobust_agent as agent;
pub use byterobust_analyzer as analyzer;
pub use byterobust_checkpoint as checkpoint;
pub use byterobust_cluster as cluster;
pub use byterobust_core as core;
pub use byterobust_fleet as fleet;
pub use byterobust_incident as incident;
pub use byterobust_obs as obs;
pub use byterobust_parallelism as parallelism;
pub use byterobust_recovery as recovery;
pub use byterobust_sim as sim;
pub use byterobust_telemetry as telemetry;
pub use byterobust_trainsim as trainsim;

/// One-stop import for applications and examples.
pub mod prelude {
    pub use byterobust_agent::prelude::*;
    pub use byterobust_analyzer::prelude::*;
    pub use byterobust_checkpoint::prelude::*;
    pub use byterobust_cluster::prelude::*;
    pub use byterobust_core::prelude::*;
    pub use byterobust_fleet::prelude::*;
    pub use byterobust_incident::prelude::*;
    pub use byterobust_obs::{
        score_alerts, trace_diagnose, trace_diagnose_all, trace_get, Alert, AlertEngine, AlertRule,
        AlertScorecard, AlertSeverity, AlertTimeline, FaultWindow, MetricsRegistry, RuleSet,
        SignalBus, SpanKind, Trace, TraceQuery, TraceRecorder,
    };
    pub use byterobust_parallelism::prelude::*;
    pub use byterobust_recovery::prelude::*;
    pub use byterobust_sim::prelude::*;
    pub use byterobust_telemetry::prelude::*;
    pub use byterobust_trainsim::prelude::*;
}
